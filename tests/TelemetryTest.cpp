//===- TelemetryTest.cpp - pst/obs counters, spans, exporters ------------------===//
//
// Part of the PST library (see Telemetry.h for the reference).
//
// Covers the observability substrate: counter and histogram arithmetic,
// thread-local sink merging (live sinks, retired threads, pool workers),
// span nesting within and across threads, both exporters (flat toJson and
// chrome-trace), the runtime gates, the span retention cap, and the
// contract that matters most: enabling telemetry must not change any
// analysis result (byte identity on the paper corpus).
//
// Assertions on probe content produced by PST_SPAN/PST_COUNTER sites in
// the pipeline are gated on PST_TELEMETRY, so the suite also passes in a
// -DPST_TELEMETRY=OFF build (where those macros compile away while the
// registry, facade and exporters remain functional).
//
//===----------------------------------------------------------------------===//

#include "pst/obs/ScopedTimer.h"
#include "pst/obs/Telemetry.h"
#include "pst/obs/TelemetryMerge.h"
#include "pst/obs/TraceWriter.h"

#include "pst/core/RegionAnalysis.h"
#include "pst/runtime/BatchAnalyzer.h"
#include "pst/support/ThreadPool.h"
#include "pst/workload/CfgGenerators.h"
#include "pst/workload/Corpus.h"
#include "pst/workload/CorpusStream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace pst;

namespace {

/// Every test starts and ends with telemetry off and the registry empty,
/// so suites can run in any order without leaking probes into each other.
class TelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    Telemetry::setEnabled(false);
    Telemetry::setTraceEnabled(false);
    Telemetry::setSpanSampleEvery(0);
    TelemetryRegistry::global().reset();
  }
  void TearDown() override {
    Telemetry::setEnabled(false);
    Telemetry::setTraceEnabled(false);
    Telemetry::setSpanSampleEvery(0);
    TelemetryRegistry::global().reset();
  }
};

//===----------------------------------------------------------------------===//
// ValueStats arithmetic
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, BucketBoundaries) {
  EXPECT_EQ(ValueStats::bucketOf(0), 0u);
  EXPECT_EQ(ValueStats::bucketOf(1), 0u);
  EXPECT_EQ(ValueStats::bucketOf(2), 1u);
  EXPECT_EQ(ValueStats::bucketOf(3), 1u);
  EXPECT_EQ(ValueStats::bucketOf(4), 2u);
  EXPECT_EQ(ValueStats::bucketOf(1023), 9u);
  EXPECT_EQ(ValueStats::bucketOf(1024), 10u);
  EXPECT_EQ(ValueStats::bucketOf(~uint64_t(0)), 63u);
}

TEST_F(TelemetryTest, RecordAndMerge) {
  ValueStats A;
  A.record(3);
  A.record(100);
  EXPECT_EQ(A.Count, 2u);
  EXPECT_EQ(A.Sum, 103u);
  EXPECT_EQ(A.Min, 3u);
  EXPECT_EQ(A.Max, 100u);
  EXPECT_DOUBLE_EQ(A.mean(), 51.5);
  EXPECT_EQ(A.Buckets[1], 1u);
  EXPECT_EQ(A.Buckets[6], 1u);

  ValueStats B;
  B.record(1);
  A.merge(B);
  EXPECT_EQ(A.Count, 3u);
  EXPECT_EQ(A.Min, 1u);
  EXPECT_EQ(A.Max, 100u);

  // Merging an empty side must not clobber min/max with its sentinels.
  ValueStats Empty;
  A.merge(Empty);
  EXPECT_EQ(A.Count, 3u);
  EXPECT_EQ(A.Min, 1u);
  EXPECT_EQ(A.Max, 100u);
}

//===----------------------------------------------------------------------===//
// Counters and value histograms through the facade
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, CountersRespectRuntimeGate) {
  Telemetry::addCounter("test.gated", 5); // Disabled: must not record.
  Telemetry::setEnabled(true);
  Telemetry::addCounter("test.gated", 2);
  Telemetry::addCounter("test.gated", 3);
  Telemetry::setEnabled(false);
  Telemetry::addCounter("test.gated", 100); // Disabled again.

  TelemetrySnapshot S = TelemetryRegistry::global().snapshot();
  ASSERT_TRUE(S.Counters.count("test.gated"));
  EXPECT_EQ(S.Counters["test.gated"], 5u);
}

TEST_F(TelemetryTest, ValueHistogramThroughFacade) {
  Telemetry::setEnabled(true);
  Telemetry::recordValue("test.hist", 1);
  Telemetry::recordValue("test.hist", 1024);
  TelemetrySnapshot S = TelemetryRegistry::global().snapshot();
  ASSERT_TRUE(S.Values.count("test.hist"));
  const ValueStats &V = S.Values["test.hist"];
  EXPECT_EQ(V.Count, 2u);
  EXPECT_EQ(V.Sum, 1025u);
  EXPECT_EQ(V.Buckets[0], 1u);
  EXPECT_EQ(V.Buckets[10], 1u);
}

TEST_F(TelemetryTest, ResetClearsEverything) {
  Telemetry::setEnabled(true);
  Telemetry::setTraceEnabled(true);
  Telemetry::addCounter("test.reset", 1);
  { ScopedTimer T("test.reset_span"); }
  TelemetryRegistry::global().reset();
  TelemetrySnapshot S = TelemetryRegistry::global().snapshot();
  EXPECT_TRUE(S.Counters.empty());
  EXPECT_TRUE(S.Timers.empty());
  EXPECT_TRUE(S.Spans.empty());
}

TEST_F(TelemetryTest, CountersMergeAcrossPoolWorkers) {
  Telemetry::setEnabled(true);
  ThreadPool Pool(4);
  const size_t Items = 1000;
  Pool.run(Items, /*ChunkSize=*/16,
           [&](size_t Begin, size_t End, unsigned) {
             for (size_t I = Begin; I < End; ++I)
               Telemetry::addCounter("test.pool_items", 1);
           });
  // The pool has joined its jobs: quiescent, safe to report.
  TelemetrySnapshot S = TelemetryRegistry::global().snapshot();
  EXPECT_EQ(S.Counters["test.pool_items"], Items);
}

TEST_F(TelemetryTest, RetiredThreadStateSurvives) {
  Telemetry::setEnabled(true);
  std::thread T([] { Telemetry::addCounter("test.retired", 7); });
  T.join(); // Thread exit retires its sink into the registry.
  TelemetrySnapshot S = TelemetryRegistry::global().snapshot();
  EXPECT_EQ(S.Counters["test.retired"], 7u);
}

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, SpanNestingSingleThread) {
  Telemetry::setEnabled(true);
  Telemetry::setTraceEnabled(true);
  {
    ScopedTimer Outer("test.outer");
    {
      ScopedTimer Mid("test.mid");
      ScopedTimer Inner("test.inner");
      (void)Inner;
      (void)Mid;
    }
    (void)Outer;
  }
  TelemetrySnapshot S = TelemetryRegistry::global().snapshot();
  ASSERT_EQ(S.Spans.size(), 3u);

  auto Find = [&](const std::string &Name) -> const SpanEvent & {
    for (const SpanEvent &E : S.Spans)
      if (Name == E.Name)
        return E;
    static SpanEvent None;
    ADD_FAILURE() << "span not found: " << Name;
    return None;
  };
  const SpanEvent &Outer = Find("test.outer");
  const SpanEvent &Mid = Find("test.mid");
  const SpanEvent &Inner = Find("test.inner");
  EXPECT_EQ(Outer.Depth, 0u);
  EXPECT_EQ(Mid.Depth, 1u);
  EXPECT_EQ(Inner.Depth, 2u);
  EXPECT_EQ(Outer.ThreadIndex, Inner.ThreadIndex);

  // Temporal containment: each child lies inside its parent's extent.
  EXPECT_GE(Mid.StartNs, Outer.StartNs);
  EXPECT_LE(Mid.StartNs + Mid.DurNs, Outer.StartNs + Outer.DurNs);
  EXPECT_GE(Inner.StartNs, Mid.StartNs);
  EXPECT_LE(Inner.StartNs + Inner.DurNs, Mid.StartNs + Mid.DurNs);

  // Durations also fold into the per-name timer statistics.
  EXPECT_EQ(S.Timers["test.outer"].Count, 1u);
  EXPECT_EQ(S.Timers["test.inner"].Count, 1u);
}

TEST_F(TelemetryTest, SpanNestingAcrossPoolThreads) {
  Telemetry::setEnabled(true);
  Telemetry::setTraceEnabled(true);
  ThreadPool Pool(4);
  Pool.run(64, /*ChunkSize=*/4, [&](size_t Begin, size_t End, unsigned) {
    ScopedTimer Chunk("test.chunk");
    for (size_t I = Begin; I < End; ++I) {
      ScopedTimer Item("test.item");
      (void)Item;
    }
    (void)Chunk;
  });

  TelemetrySnapshot S = TelemetryRegistry::global().snapshot();
  size_t Chunks = 0, Items = 0;
  for (const SpanEvent &E : S.Spans) {
    if (std::string("test.chunk") == E.Name) {
      ++Chunks;
      EXPECT_EQ(E.Depth, 0u);
    } else if (std::string("test.item") == E.Name) {
      ++Items;
      EXPECT_EQ(E.Depth, 1u);
      // Its enclosing chunk ran on the same thread and contains it.
      bool Contained = false;
      for (const SpanEvent &P : S.Spans)
        if (std::string("test.chunk") == P.Name &&
            P.ThreadIndex == E.ThreadIndex && P.StartNs <= E.StartNs &&
            E.StartNs + E.DurNs <= P.StartNs + P.DurNs)
          Contained = true;
      EXPECT_TRUE(Contained);
    }
  }
  EXPECT_EQ(Items, 64u);
  EXPECT_GE(Chunks, 1u);
  EXPECT_EQ(S.Timers["test.item"].Count, 64u);
}

TEST_F(TelemetryTest, SpanConstructedDisabledStaysInert) {
  {
    ScopedTimer T("test.inert"); // Telemetry off at construction.
    Telemetry::setEnabled(true); // Flipping mid-extent must not record.
  }
  TelemetrySnapshot S = TelemetryRegistry::global().snapshot();
  EXPECT_FALSE(S.Timers.count("test.inert"));
}

TEST_F(TelemetryTest, SpansWithoutTraceGateFoldIntoTimersOnly) {
  Telemetry::setEnabled(true); // Trace retention stays off.
  { ScopedTimer T("test.stats_only"); }
  TelemetrySnapshot S = TelemetryRegistry::global().snapshot();
  EXPECT_EQ(S.Timers["test.stats_only"].Count, 1u);
  EXPECT_TRUE(S.Spans.empty());
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, ToJsonGolden) {
  Telemetry::setEnabled(true);
  Telemetry::addCounter("t.alpha", 3);
  Telemetry::addCounter("t.beta", 1);
  Telemetry::recordValue("t.v", 1);
  Telemetry::recordValue("t.v", 1024);

  std::string Expected = std::string("{\n") +
                         "  \"telemetry_compiled\": " +
                         (PST_TELEMETRY ? "true" : "false") +
                         ",\n"
                         "  \"telemetry_enabled\": true,\n"
                         "  \"spans_retained\": 0,\n"
                         "  \"spans_dropped\": 0,\n"
                         "  \"spans_sampled_out\": 0,\n"
                         "  \"counters\": {\n"
                         "    \"t.alpha\": 3,\n"
                         "    \"t.beta\": 1\n"
                         "  },\n"
                         "  \"timers_ns\": {},\n"
                         "  \"values\": {\n"
                         "    \"t.v\": {\"count\": 2, \"sum\": 1025, "
                         "\"min\": 1, \"max\": 1024, \"mean\": 512.5, "
                         "\"log2_buckets\": [[0, 1], [10, 1]]}\n"
                         "  }\n"
                         "}\n";
  EXPECT_EQ(TelemetryRegistry::global().toJson(), Expected);
}

TEST_F(TelemetryTest, TraceWriterGolden) {
  // A hand-built snapshot pins the exporter's exact byte output: thread
  // metadata first, complete events with fractional-microsecond
  // timestamps, the counter summary last.
  TelemetrySnapshot Snap;
  Snap.Spans.push_back(SpanEvent{"alpha", 0, 0, 1500, 250000});
  Snap.Spans.push_back(SpanEvent{"beta", 0, 1, 2000, 100000});
  Snap.Spans.push_back(SpanEvent{"gamma", 1, 0, 0, 999});
  Snap.Counters["a.count"] = 7;
  Snap.Counters["b.count"] = 9;

  std::ostringstream OS;
  TraceWriter(Snap).write(OS);
  std::string Expected =
      "{\"traceEvents\": [\n"
      "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"pst-worker-0\"}},\n"
      "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 1, "
      "\"args\": {\"name\": \"pst-worker-1\"}},\n"
      "  {\"name\": \"alpha\", \"cat\": \"pst\", \"ph\": \"X\", \"pid\": 1, "
      "\"tid\": 0, \"ts\": 1.500, \"dur\": 250.000, \"args\": {\"depth\": "
      "0}},\n"
      "  {\"name\": \"beta\", \"cat\": \"pst\", \"ph\": \"X\", \"pid\": 1, "
      "\"tid\": 0, \"ts\": 2.000, \"dur\": 100.000, \"args\": {\"depth\": "
      "1}},\n"
      "  {\"name\": \"gamma\", \"cat\": \"pst\", \"ph\": \"X\", \"pid\": 1, "
      "\"tid\": 1, \"ts\": 0.000, \"dur\": 0.999, \"args\": {\"depth\": "
      "0}},\n"
      "  {\"name\": \"pst.counters\", \"cat\": \"pst\", \"ph\": \"i\", "
      "\"s\": \"g\", \"pid\": 1, \"tid\": 0, \"ts\": 0, \"args\": "
      "{\"a.count\": 7, \"b.count\": 9}}\n"
      "], \"displayTimeUnit\": \"ms\"}\n";
  EXPECT_EQ(OS.str(), Expected);
}

TEST_F(TelemetryTest, TraceWriterEmptySnapshot) {
  std::ostringstream OS;
  TraceWriter(TelemetrySnapshot{}).write(OS);
  EXPECT_EQ(OS.str(), "{\"traceEvents\": [\n\n], \"displayTimeUnit\": \"ms\"}\n");
}

TEST_F(TelemetryTest, TraceWriterEscapesNames) {
  TelemetrySnapshot Snap;
  Snap.Counters["quote\"back\\slash"] = 1;
  std::ostringstream OS;
  TraceWriter(Snap).write(OS);
  EXPECT_NE(OS.str().find("quote\\\"back\\\\slash"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Span retention sampling
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, SpanSamplingKeepsEveryNth) {
  Telemetry::setEnabled(true);
  Telemetry::setTraceEnabled(true);
  Telemetry::setSpanSampleEvery(4);
  for (int I = 0; I < 100; ++I) {
    ScopedTimer T("test.sampled");
  }
  TelemetrySnapshot S = TelemetryRegistry::global().snapshot();
  // Retention is decimated 1-in-4 (spans 0, 4, 8, ... kept)...
  EXPECT_EQ(S.Spans.size(), 25u);
  EXPECT_EQ(S.SampledOutSpans, 75u);
  EXPECT_EQ(S.DroppedSpans, 0u);
  // ...while duration statistics still saw every span.
  EXPECT_EQ(S.Timers["test.sampled"].Count, 100u);

  // The dump reports the decimation.
  EXPECT_NE(TelemetryRegistry::global().toJson().find(
                "\"spans_sampled_out\": 75"),
            std::string::npos);
}

TEST_F(TelemetryTest, SpanSamplingOffRetainsEverySpan) {
  Telemetry::setEnabled(true);
  Telemetry::setTraceEnabled(true);
  for (int I = 0; I < 10; ++I) {
    ScopedTimer T("test.unsampled");
  }
  TelemetrySnapshot S = TelemetryRegistry::global().snapshot();
  EXPECT_EQ(S.Spans.size(), 10u);
  EXPECT_EQ(S.SampledOutSpans, 0u);
}

TEST_F(TelemetryTest, SpanSamplingPhaseRestartsOnReset) {
  Telemetry::setEnabled(true);
  Telemetry::setTraceEnabled(true);
  Telemetry::setSpanSampleEvery(3);
  { ScopedTimer T("test.phase"); } // Span 0: kept.
  { ScopedTimer T("test.phase"); } // Span 1: sampled out.
  TelemetryRegistry::global().reset();
  { ScopedTimer T("test.phase"); } // Span 0 again after reset: kept.
  TelemetrySnapshot S = TelemetryRegistry::global().snapshot();
  EXPECT_EQ(S.Spans.size(), 1u);
  EXPECT_EQ(S.SampledOutSpans, 0u);
}

//===----------------------------------------------------------------------===//
// Cross-process merging (pst/obs/TelemetryMerge.h)
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, MergeParseRoundTripIsByteIdentical) {
  Telemetry::setEnabled(true);
  Telemetry::addCounter("m.count", 7);
  Telemetry::recordValue("m.val", 3);
  Telemetry::recordValue("m.val", 1000000);
  { ScopedTimer T("m.span"); }

  std::string Dump = TelemetryRegistry::global().toJson();
  TelemetryStats S;
  std::string Error;
  ASSERT_TRUE(parseTelemetryJson(Dump, S, &Error)) << Error;
  EXPECT_EQ(telemetryStatsToJson(S), Dump);
  EXPECT_EQ(S.Counters["m.count"], 7u);
  EXPECT_EQ(S.Values["m.val"].Count, 2u);
  EXPECT_EQ(S.Values["m.val"].Sum, 1000003u);
}

TEST_F(TelemetryTest, MergeAddsCountersAndHistograms) {
  TelemetryStats A;
  A.Enabled = true;
  A.SpansRetained = 10;
  A.SpansSampledOut = 5;
  A.Counters["shared"] = 3;
  A.Counters["only_a"] = 1;
  A.Values["lat"].record(4);
  A.Values["lat"].record(8);

  TelemetryStats B;
  B.Enabled = false;
  B.SpansRetained = 2;
  B.SpansDropped = 1;
  B.Counters["shared"] = 39;
  B.Values["lat"].record(1);

  TelemetryStats Parts[2] = {std::move(A), std::move(B)};
  TelemetryStats M = mergeTelemetryStats(Parts);
  EXPECT_TRUE(M.Compiled);
  EXPECT_TRUE(M.Enabled); // OR of the parts.
  EXPECT_EQ(M.SpansRetained, 12u);
  EXPECT_EQ(M.SpansDropped, 1u);
  EXPECT_EQ(M.SpansSampledOut, 5u);
  EXPECT_EQ(M.Counters["shared"], 42u);
  EXPECT_EQ(M.Counters["only_a"], 1u);
  EXPECT_EQ(M.Values["lat"].Count, 3u);
  EXPECT_EQ(M.Values["lat"].Sum, 13u);
  EXPECT_EQ(M.Values["lat"].Min, 1u);
  EXPECT_EQ(M.Values["lat"].Max, 8u);
  // The merged mean is recomputed from count/sum, not averaged.
  EXPECT_NE(telemetryStatsToJson(M).find("\"mean\": 4.33333"),
            std::string::npos);
}

TEST_F(TelemetryTest, MergeEmptyStatsKeepMinSentinel) {
  // An empty histogram serializes min as 0; the parser must restore the
  // sentinel so merging it under a real histogram keeps the true min.
  TelemetryStats Empty;
  Empty.Values["lat"]; // Count == 0.
  std::string Dump = telemetryStatsToJson(Empty);
  TelemetryStats Parsed;
  ASSERT_TRUE(parseTelemetryJson(Dump, Parsed));
  EXPECT_EQ(Parsed.Values["lat"].Min, ~uint64_t(0));

  TelemetryStats Real;
  Real.Values["lat"].record(100);
  TelemetryStats Parts[2] = {std::move(Parsed), std::move(Real)};
  TelemetryStats M = mergeTelemetryStats(Parts);
  EXPECT_EQ(M.Values["lat"].Min, 100u);
}

TEST_F(TelemetryTest, ParseRejectsMalformedDumps) {
  TelemetryStats S;
  std::string Error;
  EXPECT_FALSE(parseTelemetryJson("{\"telemetry_compiled\": maybe}", S,
                                  &Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(parseTelemetryJson("not json at all", S, &Error));
  EXPECT_FALSE(parseTelemetryJson("{\"unknown_key\": 1}", S, &Error));
  // Truncated input.
  EXPECT_FALSE(parseTelemetryJson("{\"counters\": {\"a\": 1", S, &Error));
}

//===----------------------------------------------------------------------===//
// Pipeline instrumentation
//===----------------------------------------------------------------------===//

#if PST_TELEMETRY
/// Dumps the global counter totals as canonical JSON and diffs them
/// against tests/golden/<FileName>; with PST_UPDATE_TELEMETRY_GOLDEN set,
/// rewrites the golden instead (and skips).
void checkCounterGolden(const char *FileName) {
  TelemetrySnapshot S = TelemetryRegistry::global().snapshot();
  std::ostringstream OS;
  OS << "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : S.Counters) {
    OS << (First ? "\n    \"" : ",\n    \"") << Name << "\": " << Value;
    First = false;
  }
  OS << "\n  }\n}\n";
  std::string Actual = OS.str();

  const std::string Path = std::string(PST_GOLDEN_DIR) + "/" + FileName;
  if (const char *Update = std::getenv("PST_UPDATE_TELEMETRY_GOLDEN");
      Update && *Update) {
    std::ofstream Out(Path);
    Out << Actual;
    ASSERT_TRUE(Out.good()) << "cannot write golden: " << Path;
    GTEST_SKIP() << "regenerated " << Path;
  }

  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing golden: " << Path;
  std::stringstream Expected;
  Expected << In.rdbuf();
  EXPECT_EQ(Actual, Expected.str())
      << "telemetry counters drifted from " << Path
      << "; if the pipeline change is intentional, regenerate with "
         "PST_UPDATE_TELEMETRY_GOLDEN=1";
}

TEST_F(TelemetryTest, PipelineProbesPopulate) {
  Telemetry::setEnabled(true);
  Telemetry::setTraceEnabled(true);
  Cfg G = paperFigure1Cfg();
  ProgramStructureTree T = ProgramStructureTree::build(G);
  ControlRegionsResult CR = computeControlRegionsLinearImplicit(G);
  (void)T;
  (void)CR;

  TelemetrySnapshot S = TelemetryRegistry::global().snapshot();
  EXPECT_GE(S.Counters["pst.builds"], 1u);
  EXPECT_GE(S.Counters["cycleequiv.runs"], 1u);
  EXPECT_GE(S.Counters["cdg.runs"], 1u);
  EXPECT_GE(S.Timers["pst.build"].Count, 1u);
  EXPECT_GE(S.Timers["cycleequiv.run"].Count, 1u);

  // The acceptance-criterion nesting: a cycleequiv.run span sits inside a
  // pst.build span (depth > 0 on the same thread).
  bool NestedCycleEquiv = false;
  for (const SpanEvent &E : S.Spans)
    if (std::string("cycleequiv.run") == E.Name && E.Depth > 0)
      NestedCycleEquiv = true;
  EXPECT_TRUE(NestedCycleEquiv);
}
/// The telemetry-diff regression gate: analyzing the 254-procedure paper
/// corpus must produce exactly the pinned counter totals. Counters are
/// work-proportional (runs, nodes, edges, classes, regions), so any change
/// to what the pipeline computes — a stage silently running twice, a
/// fast path skipping work, the CfgView path diverging from the legacy
/// path — shows up as a diff here even when every oracle test still
/// passes. Timers and span retention are deliberately excluded: they
/// drift with machine speed; counters must not.
///
/// Regenerate after an intentional pipeline change with:
///   PST_UPDATE_TELEMETRY_GOLDEN=1 ./tests/test_telemetry \
///     --gtest_filter='*CounterGoldenPaperCorpus*'
TEST_F(TelemetryTest, CounterGoldenPaperCorpus) {
  Telemetry::setEnabled(true);

  std::vector<CorpusFunction> Corpus = generatePaperCorpus(/*Seed=*/1994);
  std::vector<const Cfg *> Ptrs;
  Ptrs.reserve(Corpus.size());
  for (const CorpusFunction &F : Corpus)
    Ptrs.push_back(&F.Fn.Graph);

  // Single worker: counter totals are order-independent sums, but one
  // thread keeps the run itself deterministic too.
  BatchOptions Opts;
  Opts.NumThreads = 1;
  BatchAnalyzer Engine(Opts);
  (void)Engine.analyzeCorpus(std::span<const Cfg *const>(Ptrs));

  checkCounterGolden("telemetry_counters_paper.json");
}

/// The same gate over the streaming pipeline: stream-build a small
/// generated corpus image out of core, then analyze it through the
/// windowed sink path. This pins the stream probe families
/// (workload.gen.*, image.stream.*, batch.stream.*) alongside the
/// per-function pipeline counters the two passes generate — and, because
/// the golden is a complete counter dump, it also proves the stream
/// counters never leak into the materializing analyzeCorpus totals above
/// (the paper golden would diff if they did).
TEST_F(TelemetryTest, CounterGoldenStreamPipeline) {
  Telemetry::setEnabled(true);

  StreamCorpusOptions SO;
  SO.Count = 96;
  // Route both passes through the canonical chunked producer so the
  // workload.gen.* counters are pinned too (the build calls the producer
  // twice; Begin rewinding to 0 marks the second pass).
  CorpusStream Stream(SO, /*ChunkFunctions=*/17);
  CorpusChunk Chunk;
  ChunkProducer Produce = [&](uint64_t Begin, uint64_t Count,
                              std::vector<Cfg> &Graphs,
                              std::vector<std::string> &Names) {
    if (Begin == 0)
      Stream.reset();
    ASSERT_TRUE(Stream.next(Chunk));
    ASSERT_EQ(Chunk.Begin, Begin);
    ASSERT_EQ(Chunk.size(), Count);
    Graphs = Chunk.Graphs;
    Names = Chunk.Names;
  };

  BatchOptions Opts;
  Opts.NumThreads = 1;
  BatchAnalyzer Engine(Opts);
  std::string Path = ::testing::TempDir() + "telemetry_stream.img";
  std::string Error;
  ASSERT_TRUE(Engine.buildImageStream(SO.Count, Produce, /*ChunkFunctions=*/17,
                                      Path, &Error))
      << Error;
  {
    CorpusImage Img = CorpusImage::map(Path, &Error);
    ASSERT_TRUE(Img.valid()) << Error;
    uint64_t Seen = 0;
    Engine.analyzeCorpusStream(
        Img, [&Seen](uint64_t, const FunctionAnalysis &) { ++Seen; },
        /*WindowFunctions=*/32);
    ASSERT_EQ(Seen, SO.Count);
  }
  std::remove(Path.c_str());

  checkCounterGolden("telemetry_counters_stream.json");
}
#endif // PST_TELEMETRY

//===----------------------------------------------------------------------===//
// Byte identity: telemetry must observe, never perturb
//===----------------------------------------------------------------------===//

std::string fingerprint(const Cfg &G, const FunctionAnalysis &A) {
  std::ostringstream OS;
  OS << formatPst(G, A.Pst);
  OS << "cr " << A.ControlRegions.NumClasses << ':';
  for (uint32_t C : A.ControlRegions.NodeClass)
    OS << ' ' << C;
  OS << '\n';
  return OS.str();
}

TEST_F(TelemetryTest, EnablingTelemetryPreservesResultsOnPaperCorpus) {
  std::vector<CorpusFunction> Corpus = generatePaperCorpus(/*Seed=*/1994);
  std::vector<const Cfg *> Ptrs;
  Ptrs.reserve(Corpus.size());
  for (const CorpusFunction &F : Corpus)
    Ptrs.push_back(&F.Fn.Graph);

  BatchOptions Opts;
  Opts.NumThreads = 4;

  auto Run = [&] {
    BatchAnalyzer Engine(Opts);
    std::vector<FunctionAnalysis> As =
        Engine.analyzeCorpus(std::span<const Cfg *const>(Ptrs));
    std::vector<std::string> Out;
    Out.reserve(As.size());
    for (size_t I = 0; I < As.size(); ++I)
      Out.push_back(fingerprint(*Ptrs[I], As[I]));
    return Out;
  };

  std::vector<std::string> Baseline = Run(); // Telemetry off.
  Telemetry::setEnabled(true);
  Telemetry::setTraceEnabled(true);
  std::vector<std::string> Instrumented = Run();

  ASSERT_EQ(Baseline.size(), Instrumented.size());
  for (size_t I = 0; I < Baseline.size(); ++I)
    EXPECT_EQ(Baseline[I], Instrumented[I]) << "function " << I;
}

//===----------------------------------------------------------------------===//
// Retention cap
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, SpanRetentionCapCountsDrops) {
  Telemetry::setEnabled(true);
  Telemetry::setTraceEnabled(true);
  const size_t Cap = size_t(1) << 20; // MaxSpansPerThread in Telemetry.cpp.
  const size_t Extra = 100;
  for (size_t I = 0; I < Cap + Extra; ++I) {
    ScopedTimer T("test.capped");
    (void)T;
  }
  TelemetrySnapshot S = TelemetryRegistry::global().snapshot();
  EXPECT_EQ(S.Spans.size(), Cap);
  EXPECT_EQ(S.DroppedSpans, Extra);
  // Statistics keep counting past the retention cap.
  EXPECT_EQ(S.Timers["test.capped"].Count, Cap + Extra);
}

} // namespace
