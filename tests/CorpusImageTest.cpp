//===- CorpusImageTest.cpp - frozen mmap-able corpus images --------------------===//
//
// Part of the PST library (see pst/image/CorpusImage.h for the reference).
//
// Four layers of coverage for the corpus image:
//  1. Round-trip byte identity: build -> decode -> rebuild reproduces the
//     image byte for byte over the full 254-procedure paper corpus, and a
//     file save/mmap cycle preserves every accessor.
//  2. Rejection: truncated files, corrupted payloads, wrong format version,
//     wrong endianness and bad magic all fail with clear error strings —
//     never a crash or a silently wrong analysis.
//  3. Mapped analysis identity: every pipeline stage run on the image's
//     zero-copy views (cycle equivalence, PST queries, control regions,
//     all dominator builders, all four dataflow solvers, phi placement,
//     the region profiler) produces output identical to the in-memory
//     pipeline.
//  4. 64-bit layout: the pure offset-table computation is exercised past
//     the 32-bit byte boundary without materializing any arrays.
//
//===----------------------------------------------------------------------===//

#include "pst/image/CorpusImage.h"

#include "pst/cdg/ControlRegions.h"
#include "pst/core/ProgramStructureTree.h"
#include "pst/core/PstDominators.h"
#include "pst/core/RegionAnalysis.h"
#include "pst/cycleequiv/CycleEquiv.h"
#include "pst/dataflow/Dataflow.h"
#include "pst/dataflow/Problems.h"
#include "pst/dataflow/Qpg.h"
#include "pst/dataflow/Seg.h"
#include "pst/dom/Dominators.h"
#include "pst/prof/RegionProfile.h"
#include "pst/runtime/BatchAnalyzer.h"
#include "pst/ssa/PhiPlacement.h"
#include "pst/workload/CfgGenerators.h"
#include "pst/workload/Corpus.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace pst;

namespace {

/// The paper corpus as (graph pointer, name) spans for the builders.
struct CorpusHandles {
  std::vector<CorpusFunction> Corpus;
  std::vector<const Cfg *> Graphs;
  std::vector<std::string> Names;

  explicit CorpusHandles(uint64_t Seed) : Corpus(generatePaperCorpus(Seed)) {
    for (const CorpusFunction &C : Corpus) {
      Graphs.push_back(&C.Fn.Graph);
      Names.push_back(C.Fn.Name);
    }
  }
};

template <class T>
void expectSpanEq(std::span<const T> A, std::span<const T> B,
                  const char *What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  ASSERT_EQ(0, std::memcmp(A.data(), B.data(), A.size_bytes())) << What;
}

//===----------------------------------------------------------------------===//
// Round-trip byte identity
//===----------------------------------------------------------------------===//

TEST(CorpusImage, RoundTripByteIdentityOnFullCorpus) {
  CorpusHandles H(/*Seed=*/1994);
  std::vector<uint8_t> Bytes = buildCorpusImage(H.Graphs, H.Names);

  std::string Error;
  CorpusImage Img = CorpusImage::fromBytes(Bytes, &Error);
  ASSERT_TRUE(Img.valid()) << Error;
  EXPECT_TRUE(Img.verify(&Error)) << Error;
  ASSERT_EQ(Img.numFunctions(), H.Graphs.size());

  // Decode every function back to an owned Cfg, then re-encode the whole
  // corpus from the decoded graphs: the result must reproduce the original
  // image byte for byte. This pins CFG materialization (nodes, labels,
  // edge order, entry/exit), name storage, and determinism of the PST
  // rebuild in one golden.
  std::vector<Cfg> Decoded;
  Decoded.reserve(Img.numFunctions());
  for (uint64_t I = 0; I < Img.numFunctions(); ++I) {
    EXPECT_EQ(Img.functionName(I), H.Names[I]);
    Decoded.push_back(Img.materializeCfg(I));
  }
  std::vector<const Cfg *> DecodedPtrs;
  for (const Cfg &G : Decoded)
    DecodedPtrs.push_back(&G);
  std::vector<uint8_t> Rebuilt = buildCorpusImage(DecodedPtrs, H.Names);
  // Compare the mapped view of the original, not its in-memory buffer, so
  // the comparison also covers what a reader actually sees.
  ASSERT_EQ(Bytes, Rebuilt);
}

TEST(CorpusImage, FileSaveAndMapPreservesEveryAccessor) {
  CorpusHandles H(/*Seed=*/1994);
  std::vector<uint8_t> Bytes = buildCorpusImage(H.Graphs, H.Names);

  std::string Path = ::testing::TempDir() + "corpus_image_test.img";
  std::string Error;
  ASSERT_TRUE(writeImageFile(Path, Bytes, &Error)) << Error;
  CorpusImage Img = CorpusImage::map(Path, &Error);
  ASSERT_TRUE(Img.valid()) << Error;
  EXPECT_TRUE(Img.verify(&Error)) << Error;
  ASSERT_EQ(Img.numFunctions(), H.Graphs.size());
  EXPECT_EQ(Img.fileBytes(), Bytes.size());

  for (uint64_t I = 0; I < Img.numFunctions(); ++I) {
    const Cfg &G = *H.Graphs[I];
    ProgramStructureTree Direct = ProgramStructureTree::build(G);
    ProgramStructureTree Mapped = Img.pst(I);
    EXPECT_TRUE(Mapped.isExternal());
    EXPECT_EQ(Mapped.cycleEquiv().EdgeClass.size(), 0u);
    expectSpanEq(Direct.regionTable(), Mapped.regionTable(), "regions");
    expectSpanEq(Direct.nodeRegionTable(), Mapped.nodeRegionTable(),
                 "node regions");
    expectSpanEq(Direct.edgeRegionTable(), Mapped.edgeRegionTable(),
                 "edge regions");
    expectSpanEq(Direct.entryOfTable(), Mapped.entryOfTable(), "entry-of");
    expectSpanEq(Direct.exitOfTable(), Mapped.exitOfTable(), "exit-of");
    expectSpanEq(Direct.childOffTable(), Mapped.childOffTable(), "child off");
    expectSpanEq(Direct.childValTable(), Mapped.childValTable(), "child val");
    expectSpanEq(Direct.immOffTable(), Mapped.immOffTable(), "imm off");
    expectSpanEq(Direct.immValTable(), Mapped.immValTable(), "imm val");

    CfgView MV = Img.cfg(I);
    ASSERT_EQ(MV.numNodes(), G.numNodes());
    ASSERT_EQ(MV.numEdges(), G.numEdges());
    EXPECT_EQ(MV.entry(), G.entry());
    EXPECT_EQ(MV.exit(), G.exit());
    for (NodeId N = 0; N < G.numNodes(); ++N) {
      ASSERT_TRUE(std::ranges::equal(MV.succEdges(N), G.succEdges(N)))
          << H.Names[I] << " node " << N;
      ASSERT_TRUE(std::ranges::equal(MV.predEdges(N), G.predEdges(N)))
          << H.Names[I] << " node " << N;
    }
  }
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Rejection of damaged or foreign images
//===----------------------------------------------------------------------===//

std::vector<uint8_t> smallImage() {
  Cfg G = paperFigure1Cfg();
  const Cfg *P = &G;
  std::string Name = "fig1";
  return buildCorpusImage({&P, 1}, {&Name, 1});
}

void expectRejected(std::vector<uint8_t> Bytes, const char *Needle) {
  std::string Error;
  CorpusImage Img = CorpusImage::fromBytes(std::move(Bytes), &Error);
  EXPECT_FALSE(Img.valid());
  EXPECT_NE(Error.find(Needle), std::string::npos)
      << "error was: " << Error << "\nexpected to mention: " << Needle;
}

TEST(CorpusImageRejection, TruncatedFiles) {
  std::vector<uint8_t> Bytes = smallImage();

  // Shorter than the header.
  std::vector<uint8_t> Tiny(Bytes.begin(), Bytes.begin() + 16);
  expectRejected(std::move(Tiny), "truncated");

  // One byte chopped off the end: the header's recorded size disagrees.
  std::vector<uint8_t> Chopped(Bytes.begin(), Bytes.end() - 1);
  expectRejected(std::move(Chopped), "truncated");

  // Cut inside the section payloads.
  std::vector<uint8_t> Half(Bytes.begin(), Bytes.begin() + Bytes.size() / 2);
  expectRejected(std::move(Half), "truncated");
}

TEST(CorpusImageRejection, WrongVersionWrongEndiannessBadMagic) {
  std::vector<uint8_t> Bytes = smallImage();

  // Header field offsets are part of the format: magic at 0, version at 8,
  // endian tag at 12.
  std::vector<uint8_t> V = Bytes;
  uint32_t BadVersion = image::FormatVersion + 7;
  std::memcpy(V.data() + 8, &BadVersion, 4);
  expectRejected(std::move(V), "format version");

  std::vector<uint8_t> E = Bytes;
  uint32_t Swapped = 0x04030201;
  std::memcpy(E.data() + 12, &Swapped, 4);
  expectRejected(std::move(E), "endianness");

  std::vector<uint8_t> M = Bytes;
  M[0] = 'X';
  expectRejected(std::move(M), "bad magic");
}

TEST(CorpusImageRejection, CorruptedPayloadFailsVerifyWithSectionName) {
  std::vector<uint8_t> Bytes = smallImage();
  std::string Error;
  {
    CorpusImage Img = CorpusImage::fromBytes(Bytes, &Error);
    ASSERT_TRUE(Img.valid()) << Error;
    ASSERT_TRUE(Img.verify(&Error)) << Error;
  }

  // Flip one byte in every section payload in turn; verify() must fail
  // and name that section.
  for (uint32_t K = 0; K < image::NumSections; ++K) {
    CorpusImage Clean = CorpusImage::fromBytes(Bytes, &Error);
    ASSERT_TRUE(Clean.valid());
    const image::SectionDesc &D = Clean.section(K);
    if (D.Bytes == 0)
      continue;
    std::vector<uint8_t> Bad = Bytes;
    Bad[D.Offset] ^= 0x5a;
    CorpusImage Img = CorpusImage::fromBytes(std::move(Bad), &Error);
    // Structural validation may itself reject the flip (e.g. a corrupted
    // function table); when it does, the diagnostic already points at the
    // damage. Otherwise verify() must catch it.
    if (!Img.valid())
      continue;
    EXPECT_FALSE(Img.verify(&Error));
    EXPECT_NE(Error.find("checksum mismatch"), std::string::npos) << Error;
    EXPECT_NE(Error.find(image::sectionName(image::SectionKind(K))),
              std::string::npos)
        << Error;
  }
}

TEST(CorpusImageRejection, MapOfMissingFileFails) {
  std::string Error;
  CorpusImage Img =
      CorpusImage::map(::testing::TempDir() + "does_not_exist.img", &Error);
  EXPECT_FALSE(Img.valid());
  EXPECT_NE(Error.find("cannot open"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// Mapped analysis == in-memory pipeline
//===----------------------------------------------------------------------===//

TEST(CorpusImageByteIdentity, MappedAnalysisMatchesInMemoryOnFullCorpus) {
  CorpusHandles H(/*Seed=*/1994);
  std::vector<uint8_t> Bytes = buildCorpusImage(H.Graphs, H.Names);
  std::string Path = ::testing::TempDir() + "corpus_image_analysis.img";
  std::string Error;
  ASSERT_TRUE(writeImageFile(Path, Bytes, &Error)) << Error;
  CorpusImage Img = CorpusImage::map(Path, &Error);
  ASSERT_TRUE(Img.valid()) << Error;

  CfgViewScratch VS;
  CycleEquivScratch CES;
  ControlRegionsScratch CRS;

  for (uint64_t I = 0; I < Img.numFunctions(); ++I) {
    const CorpusFunction &C = H.Corpus[I];
    const Cfg &G = C.Fn.Graph;
    CfgView MV = Img.cfg(I);
    ProgramStructureTree MT = Img.pst(I);

    // Cycle equivalence on the mapped CSR arrays.
    CycleEquivResult CeL = computeCycleEquivalence(G);
    CycleEquivResult CeM =
        computeCycleEquivalence(MV, /*AddReturnEdge=*/true, CES);
    ASSERT_EQ(CeL.EdgeClass, CeM.EdgeClass) << C.Fn.Name;

    // PST queries through the printer (exercises children, immediateNodes,
    // regionOfNode, depths and entry/exit edges in one golden).
    ProgramStructureTree TL = ProgramStructureTree::build(G);
    ASSERT_EQ(formatPst(G, TL), formatPst(G, MT)) << C.Fn.Name;

    // Control regions over the mapped view.
    ControlRegionsResult CrL = computeControlRegionsLinearImplicit(G);
    ControlRegionsResult CrM = computeControlRegionsLinearImplicit(MV, CRS);
    ASSERT_EQ(CrL.NodeClass, CrM.NodeClass) << C.Fn.Name;

    // Every dominator builder, including the one that consumes the PST.
    DomTree DL = DomTree::buildIterative(G);
    DomTree DM = DomTree::buildIterative(MV);
    DomTree PL = DomTree::buildPostDom(G);
    DomTree PM = DomTree::buildPostDom(MV);
    DomTree LL = DomTree::buildLengauerTarjan(G);
    DomTree LM = DomTree::buildLengauerTarjan(MV);
    DomTree QL = buildDominatorsViaPst(G, TL);
    DomTree QM = buildDominatorsViaPst(MV, MT);
    for (NodeId N = 0; N < G.numNodes(); ++N) {
      ASSERT_EQ(DL.idom(N), DM.idom(N)) << C.Fn.Name << " node " << N;
      ASSERT_EQ(PL.idom(N), PM.idom(N)) << C.Fn.Name << " node " << N;
      ASSERT_EQ(LL.idom(N), LM.idom(N)) << C.Fn.Name << " node " << N;
      ASSERT_EQ(QL.idom(N), QM.idom(N)) << C.Fn.Name << " node " << N;
    }

    // All four dataflow solvers.
    BitVectorProblem P = makeReachingDefs(C.Fn);
    ASSERT_EQ(solveIterative(G, P), solveIterative(MV, P)) << C.Fn.Name;
    ASSERT_EQ(solveElimination(G, TL, P), solveElimination(MV, MT, P))
        << C.Fn.Name;
    DominanceFrontiers DF(G, DL);
    ASSERT_EQ(solveOnSeg(G, DL, DF, P), solveOnSeg(MV, DL, DF, P))
        << C.Fn.Name;
    auto Keys = expressionKeys(C.Fn);
    if (!Keys.empty()) {
      BitVectorProblem Q = makeSingleExprAvailability(C.Fn, Keys.front());
      ASSERT_EQ(solveOnQpg(G, TL, Q).EdgeValue,
                solveOnQpg(MV, MT, Q).EdgeValue)
          << C.Fn.Name;
    }

    // Phi placement, classic and PST-accelerated.
    ASSERT_EQ(placePhisClassic(C.Fn).PhiBlocks,
              placePhisClassic(C.Fn, MV).PhiBlocks)
        << C.Fn.Name;
    ASSERT_EQ(placePhisPst(C.Fn, TL).PhiBlocks,
              placePhisPst(C.Fn, MV, MT).PhiBlocks)
        << C.Fn.Name;
  }
  std::remove(Path.c_str());
}

TEST(CorpusImageByteIdentity, RegionProfilerRunsOnMappedPst) {
  CorpusHandles H(/*Seed=*/1994);
  std::vector<uint8_t> Bytes = buildCorpusImage(H.Graphs, H.Names);
  std::string Error;
  CorpusImage Img = CorpusImage::fromBytes(std::move(Bytes), &Error);
  ASSERT_TRUE(Img.valid()) << Error;

  // A slice of the corpus is plenty: the profiler's cost is in the
  // interpreter, and the point here is PST interchangeability, which the
  // whole-corpus test above already pins structurally.
  for (uint64_t I = 0; I < Img.numFunctions(); I += 16) {
    const CorpusFunction &C = H.Corpus[I];
    ProgramStructureTree TL = ProgramStructureTree::build(C.Fn.Graph);
    ProgramStructureTree MT = Img.pst(I);

    RegionProfile Direct(C.Fn, TL);
    RegionProfile Mapped(C.Fn, MT);
    std::vector<int64_t> Args{5, 3, 2};
    Direct.runAndAdd(Args);
    Mapped.runAndAdd(Args);
    Direct.finalize();
    Mapped.finalize();

    ASSERT_EQ(Direct.numRuns(), Mapped.numRuns()) << C.Fn.Name;
    ASSERT_EQ(Direct.totalWork(), Mapped.totalWork()) << C.Fn.Name;
    ASSERT_EQ(Direct.blockTotals(), Mapped.blockTotals()) << C.Fn.Name;
    ASSERT_EQ(Direct.edgeTotals(), Mapped.edgeTotals()) << C.Fn.Name;
    ASSERT_EQ(Direct.numRegions(), Mapped.numRegions()) << C.Fn.Name;
    for (RegionId R = 0; R < Direct.numRegions(); ++R) {
      const RegionDynamics &A = Direct.dynamics(R);
      const RegionDynamics &B = Mapped.dynamics(R);
      ASSERT_EQ(A.Entries, B.Entries) << C.Fn.Name << " region " << R;
      ASSERT_EQ(A.SelfCost, B.SelfCost) << C.Fn.Name << " region " << R;
      ASSERT_EQ(A.InclusiveCost, B.InclusiveCost)
          << C.Fn.Name << " region " << R;
      ASSERT_EQ(A.Iterations, B.Iterations) << C.Fn.Name << " region " << R;
      ASSERT_EQ(A.SpanPerEntry, B.SpanPerEntry)
          << C.Fn.Name << " region " << R;
    }
  }
}

//===----------------------------------------------------------------------===//
// Parallel build and image-based batch analysis
//===----------------------------------------------------------------------===//

TEST(CorpusImageBatch, ParallelBuildByteIdenticalAcrossThreadCounts) {
  CorpusHandles H(/*Seed=*/1994);
  std::vector<Cfg> Graphs;
  Graphs.reserve(H.Corpus.size());
  for (const CorpusFunction &C : H.Corpus)
    Graphs.push_back(C.Fn.Graph);

  std::vector<uint8_t> Serial = buildCorpusImage(H.Graphs, H.Names);
  for (unsigned Threads : {1u, 4u}) {
    BatchOptions O;
    O.NumThreads = Threads;
    BatchAnalyzer A(O);
    ASSERT_EQ(A.buildImage(Graphs, H.Names), Serial)
        << Threads << " threads";
  }
}

TEST(CorpusImageBatch, ImageAnalyzeCorpusMatchesDirectPath) {
  CorpusHandles H(/*Seed=*/1994);
  std::vector<Cfg> Graphs;
  for (const CorpusFunction &C : H.Corpus)
    Graphs.push_back(C.Fn.Graph);

  BatchOptions O;
  O.NumThreads = 2;
  BatchAnalyzer A(O);
  std::string Error;
  CorpusImage Img = CorpusImage::fromBytes(A.buildImage(Graphs, H.Names),
                                           &Error);
  ASSERT_TRUE(Img.valid()) << Error;

  std::vector<FunctionAnalysis> Direct = A.analyzeCorpus(Graphs);
  std::vector<FunctionAnalysis> Mapped = A.analyzeCorpus(Img);
  ASSERT_EQ(Direct.size(), Mapped.size());
  for (size_t I = 0; I < Direct.size(); ++I) {
    const Cfg &G = Graphs[I];
    EXPECT_TRUE(Mapped[I].Pst.isExternal());
    ASSERT_EQ(formatPst(G, Direct[I].Pst), formatPst(G, Mapped[I].Pst))
        << H.Names[I];
    ASSERT_EQ(Direct[I].ControlRegions.NodeClass,
              Mapped[I].ControlRegions.NodeClass)
        << H.Names[I];
    ASSERT_EQ(Direct[I].ControlRegions.NumClasses,
              Mapped[I].ControlRegions.NumClasses)
        << H.Names[I];
  }
}

//===----------------------------------------------------------------------===//
// Adopted-tree storage semantics
//===----------------------------------------------------------------------===//

TEST(ProgramStructureTreeStorage, CopySemanticsOwnedAndAdopted) {
  Cfg G = paperFigure1Cfg();
  ProgramStructureTree Owned = ProgramStructureTree::build(G);
  ASSERT_FALSE(Owned.isExternal());

  // Copying an owning tree deep-copies: fresh arrays, same content.
  ProgramStructureTree OwnedCopy(Owned);
  EXPECT_FALSE(OwnedCopy.isExternal());
  EXPECT_NE(Owned.regionTable().data(), OwnedCopy.regionTable().data());
  EXPECT_EQ(formatPst(G, Owned), formatPst(G, OwnedCopy));

  // Adopting aliases the owner's arrays; copying the adopted tree keeps
  // aliasing the same external storage.
  ProgramStructureTree Adopted = ProgramStructureTree::adoptExternal(
      Owned.regionTable(), Owned.nodeRegionTable(), Owned.edgeRegionTable(),
      Owned.entryOfTable(), Owned.exitOfTable(), Owned.childOffTable(),
      Owned.childValTable(), Owned.immOffTable(), Owned.immValTable());
  EXPECT_TRUE(Adopted.isExternal());
  EXPECT_EQ(Adopted.regionTable().data(), Owned.regionTable().data());
  EXPECT_EQ(formatPst(G, Adopted), formatPst(G, Owned));
  ProgramStructureTree AdoptedCopy(Adopted);
  EXPECT_TRUE(AdoptedCopy.isExternal());
  EXPECT_EQ(AdoptedCopy.regionTable().data(), Owned.regionTable().data());

  // Moving an owning tree transfers the buffers, so reads through the
  // moved-to tree see the original storage.
  const SeseRegion *Before = Owned.regionTable().data();
  ProgramStructureTree Moved(std::move(Owned));
  EXPECT_EQ(Moved.regionTable().data(), Before);
  EXPECT_EQ(formatPst(G, Moved), formatPst(G, OwnedCopy));

  // Copy assignment over an existing tree rebinds too.
  ProgramStructureTree Assigned;
  Assigned = Moved;
  EXPECT_NE(Assigned.regionTable().data(), Moved.regionTable().data());
  EXPECT_EQ(formatPst(G, Assigned), formatPst(G, Moved));
}

//===----------------------------------------------------------------------===//
// 64-bit layout arithmetic
//===----------------------------------------------------------------------===//

TEST(CorpusImageLayout, SectionsAndBasesPastThe32BitBoundary) {
  // Six synthetic giants: ~1.2 G nodes and 2.4 G edges in total, far past
  // what u32 byte offsets could address. Nothing is materialized — the
  // layout pass is pure arithmetic over the shapes.
  image::FunctionShape Big;
  Big.NumNodes = 200'000'000;
  Big.NumEdges = 500'000'000;
  Big.NumRegions = 50'000'000;
  Big.Entry = 0;
  Big.Exit = 1;
  Big.StrBytes = 1'000'000'000;
  std::vector<image::FunctionShape> Shapes(6, Big);

  image::ImageLayout L = image::computeCorpusLayout(Shapes);

  // Every section is 8-byte aligned, in file order, non-overlapping.
  uint64_t PrevEnd = 0;
  for (uint32_t K = 0; K < image::NumSections; ++K) {
    EXPECT_EQ(L.SectionOffset[K] % image::SectionAlign, 0u)
        << image::sectionName(image::SectionKind(K));
    EXPECT_GE(L.SectionOffset[K], PrevEnd)
        << image::sectionName(image::SectionKind(K));
    PrevEnd = L.SectionOffset[K] + L.SectionBytes[K];
  }
  EXPECT_GE(L.FileBytes, PrevEnd);

  // The per-edge arrays alone are 1.6e9 * 6 * 4 bytes each section:
  // comfortably past 2^32.
  EXPECT_GT(L.SectionBytes[uint32_t(image::SectionKind::SuccEdge)],
            uint64_t(1) << 32);
  EXPECT_GT(L.FileBytes, uint64_t(1) << 35);

  // Offset-table fixup: base of function I is the sum over functions
  // before it; element bases themselves cross 2^32 at the tail.
  ASSERT_EQ(L.Funcs.size(), Shapes.size());
  for (size_t I = 0; I < Shapes.size(); ++I) {
    EXPECT_EQ(L.Funcs[I].NodeBase, I * uint64_t(Big.NumNodes));
    EXPECT_EQ(L.Funcs[I].EdgeBase, I * uint64_t(Big.NumEdges));
    EXPECT_EQ(L.Funcs[I].CsrBase, I * (uint64_t(Big.NumNodes) + 1));
    EXPECT_EQ(L.Funcs[I].RegionBase, I * uint64_t(Big.NumRegions));
    EXPECT_EQ(L.Funcs[I].RegionCsrBase, I * (uint64_t(Big.NumRegions) + 1));
    EXPECT_EQ(L.Funcs[I].ChildBase, I * (uint64_t(Big.NumRegions) - 1));
    EXPECT_EQ(L.Funcs[I].NameOff, I * Big.StrBytes);
  }
  EXPECT_GT(L.Funcs.back().EdgeBase, uint64_t(1) << 31);
}

} // namespace
