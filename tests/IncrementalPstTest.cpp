//===- IncrementalPstTest.cpp - incremental PST maintenance tests ------------===//
//
// Part of the PST library test suite: unit tests for the DynamicCfg edit
// API and journal, golden tests for dirty-subtree splicing (survive and
// dissolve cases), and the randomized equivalence sweep — the incremental
// tree must be node-for-node identical to a from-scratch build after every
// commit, over hundreds of random edit sequences on both structured and
// goto-heavy generated CFGs, including sequences that force the
// full-recompute fallback.
//
//===----------------------------------------------------------------------===//

#include "pst/incremental/IncrementalPst.h"

#include "pst/graph/CfgAlgorithms.h"
#include "pst/workload/CfgGenerators.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace pst;

namespace {

void expectMatchesFromScratch(const IncrementalPst &IP, uint64_t Seed,
                              int Step) {
  std::string Why;
  EXPECT_TRUE(IP.equalsFromScratch(&Why))
      << "seed " << Seed << " step " << Step << ": " << Why;
}

} // namespace

//===----------------------------------------------------------------------===//
// DynamicCfg basics
//===----------------------------------------------------------------------===//

TEST(DynamicCfg, InsertDeleteJournal) {
  DynamicCfg DG(diamondLadderCfg(1));
  uint32_t E0 = DG.numLiveEdges();

  // A diamond arm: find the then-branch edge (head has two succs).
  EdgeId Ins = DG.insertEdge(DG.entry() + 1, DG.exit());
  ASSERT_NE(Ins, InvalidEdge);
  EXPECT_EQ(DG.numLiveEdges(), E0 + 1);
  EXPECT_TRUE(DG.edgeLive(Ins));

  EXPECT_TRUE(DG.deleteEdge(Ins));
  EXPECT_EQ(DG.numLiveEdges(), E0);
  EXPECT_TRUE(DG.edgeDead(Ins));

  ASSERT_EQ(DG.journal().size(), 2u);
  EXPECT_EQ(DG.journal()[0].K, CfgEdit::Kind::InsertEdge);
  EXPECT_EQ(DG.journal()[1].K, CfgEdit::Kind::DeleteEdge);
  EXPECT_EQ(DG.journal()[1].E, Ins);
}

TEST(DynamicCfg, RejectsInvalidEdits) {
  DynamicCfg DG(chainCfg(2)); // entry -> b1 -> b2 -> exit
  // No predecessors for entry, no successors for exit.
  EXPECT_EQ(DG.insertEdge(DG.exit() - 1, DG.entry()), InvalidEdge);
  EXPECT_EQ(DG.insertEdge(DG.exit(), DG.entry() + 1), InvalidEdge);
  EXPECT_EQ(DG.addBlock(DG.exit(), DG.entry() + 1), InvalidNode);
  // Deleting any chain edge disconnects the graph.
  for (EdgeId E = 0; E < DG.graph().numEdges(); ++E)
    EXPECT_FALSE(DG.deleteEdge(E)) << "edge " << E;
  EXPECT_TRUE(DG.journal().empty());
}

TEST(DynamicCfg, SplitBlockRewires) {
  DynamicCfg DG(chainCfg(1));
  EdgeId E = DG.graph().succEdges(DG.entry())[0];
  NodeId M = DG.splitBlock(E, "mid");
  EXPECT_TRUE(DG.edgeDead(E));
  const CfgEdit &Ed = DG.journal().back();
  EXPECT_EQ(Ed.K, CfgEdit::Kind::SplitBlock);
  EXPECT_EQ(Ed.NewNode, M);
  EXPECT_EQ(DG.graph().source(Ed.NewEdges[0]), Ed.Src);
  EXPECT_EQ(DG.graph().target(Ed.NewEdges[0]), M);
  EXPECT_EQ(DG.graph().source(Ed.NewEdges[1]), M);
  EXPECT_EQ(DG.graph().target(Ed.NewEdges[1]), Ed.Dst);
  EXPECT_TRUE(DG.validWithoutEdge(InvalidEdge));
}

TEST(DynamicCfg, MaterializeMapsLiveEdges) {
  DynamicCfg DG(diamondLadderCfg(2));
  // Duplicate a cond->then arm, then delete the original: the parallel
  // copy keeps the graph valid and leaves one tombstone behind.
  EdgeId Killed = DG.graph().succEdges(DG.entry() + 1)[0];
  ASSERT_NE(DG.insertEdge(DG.graph().source(Killed),
                          DG.graph().target(Killed)),
            InvalidEdge);
  ASSERT_TRUE(DG.deleteEdge(Killed));
  std::vector<EdgeId> GlobalOf, CompactOf;
  Cfg M = DG.materialize(&GlobalOf, &CompactOf);
  EXPECT_EQ(M.numEdges(), DG.numLiveEdges());
  EXPECT_EQ(M.numNodes(), DG.numNodes());
  EXPECT_EQ(CompactOf[Killed], InvalidEdge);
  for (EdgeId C = 0; C < M.numEdges(); ++C) {
    EXPECT_EQ(CompactOf[GlobalOf[C]], C);
    EXPECT_EQ(M.source(C), DG.graph().source(GlobalOf[C]));
    EXPECT_EQ(M.target(C), DG.graph().target(GlobalOf[C]));
  }
  EXPECT_TRUE(validateCfg(M));
}

//===----------------------------------------------------------------------===//
// Sub-CFG extraction
//===----------------------------------------------------------------------===//

TEST(SubCfgExtraction, Figure1LoopBody) {
  Cfg G = paperFigure1Cfg();
  ProgramStructureTree T = ProgramStructureTree::build(G);
  // The loop region entered by edge 5 with body nodes {5, 6} (head, body).
  RegionId Loop = T.regionEnteredBy(5);
  ASSERT_NE(Loop, InvalidRegion);
  std::vector<NodeId> Body = T.allNodes(Loop);
  SubCfg S = extractRegionSubCfg(G, Body, T.region(Loop).EntryEdge,
                                 T.region(Loop).ExitEdge);
  ASSERT_FALSE(S.BoundaryViolation);
  EXPECT_EQ(S.Graph.numNodes(), Body.size() + 2);
  EXPECT_TRUE(validateCfg(S.Graph));
  // Boundary edges map back to the region's real boundary.
  EXPECT_EQ(S.GlobalEdge[S.LocalEntryEdge], T.region(Loop).EntryEdge);
  EXPECT_EQ(S.GlobalEdge[S.LocalExitEdge], T.region(Loop).ExitEdge);
  // The sub-build sees the nested body region.
  ProgramStructureTree SubT = ProgramStructureTree::build(S.Graph);
  EXPECT_GE(SubT.numCanonicalRegions(), 2u);
}

TEST(SubCfgExtraction, DetectsBoundaryViolation) {
  Cfg G = paperFigure1Cfg();
  ProgramStructureTree T = ProgramStructureTree::build(G);
  RegionId Loop = T.regionEnteredBy(5);
  std::vector<NodeId> Body = T.allNodes(Loop);
  Body.pop_back(); // Drop one body node: its edges now cross the cut.
  SubCfg S = extractRegionSubCfg(G, Body, T.region(Loop).EntryEdge,
                                 T.region(Loop).ExitEdge);
  EXPECT_TRUE(S.BoundaryViolation);
}

//===----------------------------------------------------------------------===//
// IncrementalPst golden cases
//===----------------------------------------------------------------------===//

TEST(IncrementalPst, InitialTreeMatches) {
  DynamicCfg DG(paperFigure1Cfg());
  IncrementalPst IP(DG);
  EXPECT_EQ(IP.numCanonicalRegions(), 6u);
  expectMatchesFromScratch(IP, 0, 0);
  EXPECT_EQ(IP.stats().EditsApplied, 0u);
}

TEST(IncrementalPst, DeepEditOnlyRebuildsSubtree) {
  // 6 nested whiles with a few body blocks: an edit in the innermost body
  // must not reprocess the whole graph.
  Cfg G = nestedWhileCfg(6, 3);
  DynamicCfg DG(G);
  IncrementalPst IP(DG);
  uint32_t N = DG.numNodes();

  // Split a block deep inside: pick the innermost region's first immediate
  // node via the maintained tree (deepest live region).
  RegionId Deepest = IP.root();
  for (RegionId R : IP.liveRegions())
    if (!IP.immediateNodes(R).empty() &&
        IP.depth(R) > IP.depth(Deepest))
      Deepest = R;
  ASSERT_NE(Deepest, IP.root());
  NodeId Victim = IP.immediateNodes(Deepest).front();
  ASSERT_FALSE(DG.graph().succEdges(Victim).empty());
  IP.splitBlock(DG.graph().succEdges(Victim)[0], "wedge");
  IP.commit();

  expectMatchesFromScratch(IP, 0, 1);
  EXPECT_EQ(IP.stats().SubtreesRebuilt, 1u);
  EXPECT_EQ(IP.stats().FullRebuilds, 0u);
  EXPECT_LT(IP.stats().NodesReprocessed, N / 2)
      << "deep edit reprocessed too much";
}

TEST(IncrementalPst, RegionDissolvesWhenArmDeleted) {
  // entry -> a =(two parallel edges)=> b -> exit. The parallel edges make
  // (entry->a, b->exit) a canonical region D. Deleting one parallel edge
  // leaves a chain whose interior edge joins D's boundary class, so D must
  // dissolve and be replaced by the chain regions the sub-build finds.
  Cfg G;
  NodeId Entry = G.addNode("entry");
  NodeId A = G.addNode("a");
  NodeId B = G.addNode("b");
  NodeId Exit = G.addNode("exit");
  G.addEdge(Entry, A);
  EdgeId Arm = G.addEdge(A, B);
  G.addEdge(A, B);
  G.addEdge(B, Exit);
  G.setEntry(Entry);
  G.setExit(Exit);
  ASSERT_TRUE(validateCfg(G));

  DynamicCfg DG(std::move(G));
  IncrementalPst IP(DG);
  uint32_t Before = IP.numCanonicalRegions();
  ASSERT_TRUE(IP.deleteEdge(Arm));
  IP.commit();

  expectMatchesFromScratch(IP, 0, 1);
  EXPECT_NE(IP.numCanonicalRegions(), Before);
  EXPECT_EQ(IP.stats().FullRebuilds, 0u);
}

TEST(IncrementalPst, RootEditFallsBackToFullRebuild) {
  DynamicCfg DG(diamondLadderCfg(3));
  IncrementalPst IP(DG);
  // entry and exit share only the root region.
  NodeId AfterEntry = DG.graph().target(DG.graph().succEdges(DG.entry())[0]);
  NodeId BeforeExit = DG.graph().source(DG.graph().predEdges(DG.exit())[0]);
  ASSERT_NE(IP.insertEdge(AfterEntry, BeforeExit), InvalidEdge);
  IP.commit();
  EXPECT_EQ(IP.stats().FullRebuilds, 1u);
  EXPECT_EQ(IP.stats().SubtreesRebuilt, 0u);
  expectMatchesFromScratch(IP, 0, 1);
}

TEST(IncrementalPst, LocalDeleteRejectedWhenItDisconnects) {
  DynamicCfg DG(nestedWhileCfg(2, 2));
  IncrementalPst IP(DG);
  // Any edge whose removal breaks validity must be rejected, and the
  // rejection must not leave pending state behind.
  uint64_t Before = IP.stats().EditsApplied;
  uint32_t Rejected = 0;
  for (EdgeId E = 0; E < DG.graph().numEdges(); ++E)
    if (!DG.validWithoutEdge(E)) {
      EXPECT_FALSE(IP.deleteEdge(E)) << "edge " << E;
      ++Rejected;
    }
  ASSERT_GT(Rejected, 0u);
  EXPECT_EQ(IP.stats().EditsApplied, Before);
  EXPECT_EQ(IP.stats().EditsRejected, Rejected);
  IP.commit();
  expectMatchesFromScratch(IP, 0, 1);
}

TEST(IncrementalPst, DirectDynamicCfgEditsAbsorbedAtCommit) {
  DynamicCfg DG(diamondLadderCfg(4));
  IncrementalPst IP(DG);
  // Edit behind the maintainer's back; commit must still fold it in.
  NodeId Head = InvalidNode;
  for (NodeId N = 0; N < DG.numNodes(); ++N)
    if (DG.graph().succEdges(N).size() == 2)
      Head = N;
  ASSERT_NE(Head, InvalidNode);
  ASSERT_NE(DG.splitBlock(DG.graph().succEdges(Head)[0]), InvalidNode);
  EXPECT_EQ(IP.pendingEdits(), 1u);
  IP.commit();
  expectMatchesFromScratch(IP, 0, 1);
}

TEST(IncrementalPst, BatchedEditsCoalesce) {
  DynamicCfg DG(diamondLadderCfg(6));
  IncrementalPst IP(DG);
  // Several splits inside one diamond coalesce into at most a couple of
  // dirty subtrees, not one rebuild per edit.
  NodeId Head = InvalidNode;
  for (NodeId N = 0; N < DG.numNodes(); ++N)
    if (DG.graph().succEdges(N).size() == 2) {
      Head = N;
      break;
    }
  ASSERT_NE(Head, InvalidNode);
  EdgeId Arm = DG.graph().succEdges(Head)[0];
  NodeId M1 = IP.splitBlock(Arm);
  NodeId M2 = IP.splitBlock(DG.graph().succEdges(M1)[0]);
  IP.splitBlock(DG.graph().succEdges(M2)[0]);
  uint32_t Rebuilt = IP.commit();
  EXPECT_LE(Rebuilt, 2u);
  EXPECT_EQ(IP.stats().Commits, 1u);
  expectMatchesFromScratch(IP, 0, 1);
}

//===----------------------------------------------------------------------===//
// Randomized equivalence sweep
//===----------------------------------------------------------------------===//

namespace {

/// Applies \p NumEdits random edits with commits every 1-3 edits, checking
/// incremental == from-scratch after every commit. Returns the stats.
IncrementalPstStats runRandomEditSequence(Cfg G, uint64_t Seed,
                                          int NumEdits) {
  Rng R(Seed);
  DynamicCfg DG(std::move(G));
  IncrementalPst IP(DG);

  int SinceCommit = 0, NextCommit = 1 + static_cast<int>(R.nextBelow(3));
  for (int Step = 0; Step < NumEdits; ++Step) {
    uint64_t Kind = R.nextBelow(100);
    if (Kind < 40) {
      NodeId Src = static_cast<NodeId>(R.nextBelow(DG.numNodes()));
      NodeId Dst = static_cast<NodeId>(R.nextBelow(DG.numNodes()));
      IP.insertEdge(Src, Dst); // May be rejected; that's part of the test.
    } else if (Kind < 65) {
      EdgeId E = static_cast<EdgeId>(R.nextBelow(DG.graph().numEdges()));
      if (DG.edgeLive(E))
        IP.deleteEdge(E);
    } else if (Kind < 85) {
      EdgeId E = static_cast<EdgeId>(R.nextBelow(DG.graph().numEdges()));
      if (DG.edgeLive(E))
        IP.splitBlock(E);
    } else {
      NodeId Src = static_cast<NodeId>(R.nextBelow(DG.numNodes()));
      NodeId Dst = static_cast<NodeId>(R.nextBelow(DG.numNodes()));
      IP.addBlock(Src, Dst);
    }
    if (++SinceCommit >= NextCommit) {
      IP.commit();
      expectMatchesFromScratch(IP, Seed, Step);
      SinceCommit = 0;
      NextCommit = 1 + static_cast<int>(R.nextBelow(3));
    }
  }
  IP.commit();
  expectMatchesFromScratch(IP, Seed, NumEdits);
  return IP.stats();
}

} // namespace

class IncrementalRandomTest : public ::testing::TestWithParam<uint64_t> {};

// Goto-heavy family: random backbone CFGs with loops, parallel edges and
// self loops. Shallow trees here routinely force the root fallback.
TEST_P(IncrementalRandomTest, MatchesFromScratchOnRandomCfgs) {
  uint64_t Seed = GetParam();
  Rng R(Seed * 131 + 7);
  RandomCfgOptions Opts;
  Opts.NumNodes = 4 + static_cast<uint32_t>(R.nextBelow(16));
  Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(14));
  Opts.SelfLoopProb = 0.06;
  Opts.ParallelProb = 0.06;
  Cfg G = randomBackboneCfg(R, Opts);
  ASSERT_TRUE(validateCfg(G));
  runRandomEditSequence(std::move(G), Seed * 3 + 1, 12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalRandomTest,
                         ::testing::Range<uint64_t>(0, 60));

class IncrementalStructuredTest : public ::testing::TestWithParam<uint64_t> {
};

// Structured family: deep diamond ladders, loop nests and the
// repeat-until worst case, where edits land inside real subtrees.
TEST_P(IncrementalStructuredTest, MatchesFromScratchOnStructuredCfgs) {
  uint64_t Seed = GetParam();
  Cfg G;
  switch (Seed % 3) {
  case 0:
    G = diamondLadderCfg(2 + static_cast<uint32_t>(Seed % 7));
    break;
  case 1:
    G = nestedWhileCfg(1 + static_cast<uint32_t>(Seed % 5),
                       1 + static_cast<uint32_t>(Seed % 3));
    break;
  default:
    G = nestedRepeatUntilCfg(2 + static_cast<uint32_t>(Seed % 5));
    break;
  }
  runRandomEditSequence(std::move(G), Seed * 7 + 3, 12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalStructuredTest,
                         ::testing::Range<uint64_t>(0, 60));

// The sweep must have exercised both the incremental path and the
// full-recompute fallback somewhere; pin that with dedicated seeds so a
// distribution change cannot silently hollow the test out.
TEST(IncrementalPst, SweepExercisesBothPaths) {
  IncrementalPstStats Sub =
      runRandomEditSequence(nestedWhileCfg(4, 2), 17, 16);
  EXPECT_GT(Sub.SubtreesRebuilt, 0u);

  Rng R(99);
  RandomCfgOptions Opts;
  Opts.NumNodes = 8;
  Opts.NumExtraEdges = 8;
  IncrementalPstStats Full =
      runRandomEditSequence(randomBackboneCfg(R, Opts), 23, 16);
  EXPECT_GT(Full.FullRebuilds, 0u);
}
