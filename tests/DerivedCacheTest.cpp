//===- DerivedCacheTest.cpp - derived-analysis cache, LCA index, cdep CSR ----===//
//
// Part of the PST library (see pst/serve/DerivedCache.h for the reference).
//
// Three layers, bottom-up:
//
//  - PstLcaTest: the Euler-tour + sparse-table region-LCA index against a
//    parent-chain-walk oracle, on structured shapes and a seed sweep of
//    random CFGs (plus the memoized maxDepth against a region-table scan).
//  - CdepCsrTest: the precomputed control-dependence CSR against the
//    brute-force Ferrante/Ottenstein/Warren scan the uncached query path
//    runs — same sets, same ascending-edge-id order.
//  - DerivedCacheTest: slot/counter semantics (exactly-once builds, warm
//    hits), the cached-vs-uncached response-identity contract across
//    randomized edit/commit rounds (which also proves refreeze drops stale
//    bundles), and the TSan-facing suites where readers race first-touch
//    bundle builds against each other and against committing writers.
//
// The concurrency tests run in CI's thread-sanitizer job; keep new
// shared-state tests in the *Concurrent* naming pattern so the ctest
// regex picks them up.
//
//===----------------------------------------------------------------------===//

#include "pst/serve/DerivedCache.h"
#include "pst/serve/PstServer.h"
#include "pst/serve/Snapshot.h"

#include "pst/core/PstLca.h"
#include "pst/dom/ControlDependenceCsr.h"
#include "pst/dom/Dominators.h"
#include "pst/graph/CfgAlgorithms.h"
#include "pst/image/CorpusImage.h"
#include "pst/workload/CfgGenerators.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

using namespace pst;
using namespace pst::serve;

namespace {

//===----------------------------------------------------------------------===//
// PstLca: O(1) LCA vs the parent-chain walk
//===----------------------------------------------------------------------===//

/// The oracle the index must match exactly: lift the deeper region to the
/// shallower one's depth, then walk both chains up in lockstep.
RegionId lcaByWalk(const ProgramStructureTree &T, RegionId A, RegionId B) {
  while (T.region(A).Depth > T.region(B).Depth)
    A = T.region(A).Parent;
  while (T.region(B).Depth > T.region(A).Depth)
    B = T.region(B).Parent;
  while (A != B) {
    A = T.region(A).Parent;
    B = T.region(B).Parent;
  }
  return A;
}

uint32_t maxDepthByScan(const ProgramStructureTree &T) {
  uint32_t Max = 0;
  for (RegionId R = 0; R < T.numRegions(); ++R)
    Max = std::max(Max, T.region(R).Depth);
  return Max;
}

void expectLcaMatchesWalk(const Cfg &G, const char *What) {
  ProgramStructureTree T = ProgramStructureTree::build(G);
  PstLca L(T);
  ASSERT_FALSE(L.empty()) << What;
  EXPECT_EQ(L.maxDepth(), maxDepthByScan(T)) << What;
  EXPECT_GT(L.bytes(), 0u) << What;
  for (RegionId A = 0; A < T.numRegions(); ++A)
    for (RegionId B = 0; B < T.numRegions(); ++B)
      ASSERT_EQ(L.lca(A, B), lcaByWalk(T, A, B))
          << What << " regions " << A << "," << B;
}

TEST(PstLcaTest, DefaultConstructedIsEmpty) {
  PstLca L;
  EXPECT_TRUE(L.empty());
  EXPECT_EQ(L.maxDepth(), 0u);
}

TEST(PstLcaTest, StructuredShapesMatchWalk) {
  expectLcaMatchesWalk(chainCfg(5), "chain");
  expectLcaMatchesWalk(diamondLadderCfg(4), "diamond ladder");
  expectLcaMatchesWalk(nestedWhileCfg(3), "nested while");
  expectLcaMatchesWalk(nestedRepeatUntilCfg(3), "nested repeat-until");
  expectLcaMatchesWalk(irreducibleCfg(2), "irreducible");
  expectLcaMatchesWalk(paperFigure1Cfg(), "paper figure 1");
}

TEST(PstLcaTest, LcaIsReflexiveSymmetricAndRootAbsorbing) {
  ProgramStructureTree T = ProgramStructureTree::build(nestedWhileCfg(3));
  PstLca L(T);
  for (RegionId A = 0; A < T.numRegions(); ++A) {
    EXPECT_EQ(L.lca(A, A), A);
    EXPECT_EQ(L.lca(A, 0), 0u); // Region 0 is the synthetic root.
    for (RegionId B = 0; B < T.numRegions(); ++B)
      EXPECT_EQ(L.lca(A, B), L.lca(B, A));
  }
}

class PstLcaRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PstLcaRandomTest, MatchesWalkOnRandomCfgs) {
  Rng R(GetParam() * 6364136223846793005ull + 1442695040888963407ull);
  RandomCfgOptions Opts;
  Opts.NumNodes = 3 + static_cast<uint32_t>(R.nextBelow(40));
  Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(30));
  Cfg G = randomBackboneCfg(R, Opts);
  ASSERT_TRUE(validateCfg(G));
  expectLcaMatchesWalk(G, "random");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PstLcaRandomTest,
                         ::testing::Range<uint64_t>(0, 40));

//===----------------------------------------------------------------------===//
// ControlDependenceCsr: precomputed relation vs the FOW scan
//===----------------------------------------------------------------------===//

/// The exact scan the uncached `cdep` query runs: N is control dependent
/// on edge (C, M) iff N postdominates M and does not strictly
/// postdominate C. Ascending edge ids by construction.
std::vector<EdgeId> cdepByScan(const Cfg &G, const DomTree &Pdt, NodeId N) {
  std::vector<EdgeId> Out;
  for (EdgeId E = 0; E < G.numEdges(); ++E) {
    NodeId C = G.source(E), M = G.target(E);
    if (Pdt.dominates(N, M) && !(N != C && Pdt.dominates(N, C)))
      Out.push_back(E);
  }
  return Out;
}

void expectCdepMatchesScan(const Cfg &G, const char *What) {
  DomTree Pdt = DomTree::buildPostDom(G);
  ControlDependenceCsr Csr(G, Pdt);
  size_t Total = 0;
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    std::vector<EdgeId> Expect = cdepByScan(G, Pdt, N);
    std::span<const EdgeId> Got = Csr.controllingEdges(N);
    ASSERT_EQ(std::vector<EdgeId>(Got.begin(), Got.end()), Expect)
        << What << " node " << N;
    Total += Expect.size();
  }
  EXPECT_EQ(Csr.relationSize(), Total) << What;
  EXPECT_GT(Csr.bytes(), 0u) << What;
}

TEST(CdepCsrTest, StructuredShapesMatchScan) {
  expectCdepMatchesScan(chainCfg(5), "chain");
  expectCdepMatchesScan(diamondLadderCfg(4), "diamond ladder");
  expectCdepMatchesScan(nestedWhileCfg(3), "nested while");
  expectCdepMatchesScan(nestedRepeatUntilCfg(3), "nested repeat-until");
  expectCdepMatchesScan(irreducibleCfg(2), "irreducible");
  expectCdepMatchesScan(paperFigure1Cfg(), "paper figure 1");
}

class CdepCsrRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CdepCsrRandomTest, MatchesScanOnRandomCfgs) {
  // Self loops, parallel edges and back edges all stress the walk's
  // termination cases; the seeds sweep all of them in.
  Rng R(GetParam() * 2862933555777941757ull + 3037000493ull);
  RandomCfgOptions Opts;
  Opts.NumNodes = 3 + static_cast<uint32_t>(R.nextBelow(30));
  Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(40));
  Opts.SelfLoopProb = 0.15;
  Opts.ParallelProb = 0.15;
  Cfg G = randomBackboneCfg(R, Opts);
  ASSERT_TRUE(validateCfg(G));
  expectCdepMatchesScan(G, "random");
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdepCsrRandomTest,
                         ::testing::Range<uint64_t>(0, 40));

//===----------------------------------------------------------------------===//
// DerivedCache: slots, counters, and the response-identity contract
//===----------------------------------------------------------------------===//

/// 0 -> {1,2} -> 3.
Cfg diamondCfg() {
  Cfg G;
  NodeId N0 = G.addNode("entry");
  NodeId N1 = G.addNode("then");
  NodeId N2 = G.addNode("else");
  NodeId N3 = G.addNode("join");
  G.addEdge(N0, N1);
  G.addEdge(N0, N2);
  G.addEdge(N1, N3);
  G.addEdge(N2, N3);
  G.setEntry(N0);
  G.setExit(N3);
  return G;
}

/// A small mixed-shape corpus image, memory-backed; deterministic, so two
/// servers built from equal \p NumFns start byte-identical.
CorpusImage makeTestImage(uint32_t NumFns = 6) {
  std::vector<Cfg> Graphs;
  std::vector<std::string> Names;
  for (uint32_t I = 0; I < NumFns; ++I) {
    switch (I % 4) {
    case 0:
      Graphs.push_back(diamondCfg());
      break;
    case 1:
      Graphs.push_back(diamondLadderCfg(2 + I % 3));
      break;
    case 2:
      Graphs.push_back(nestedWhileCfg(2));
      break;
    default:
      Graphs.push_back(chainCfg(4));
      break;
    }
    Names.push_back("fn" + std::to_string(I));
  }
  std::vector<const Cfg *> Ptrs;
  for (const Cfg &G : Graphs)
    Ptrs.push_back(&G);
  std::string Error;
  CorpusImage Img = CorpusImage::fromBytes(buildCorpusImage(Ptrs, Names),
                                           &Error);
  EXPECT_TRUE(Img.valid()) << Error;
  return Img;
}

Request makeRequest(RequestKind K, uint64_t Fn, NodeId A = InvalidNode,
                    NodeId B = InvalidNode) {
  Request R;
  R.Kind = K;
  R.Fn = Fn;
  R.A = A;
  R.B = B;
  return R;
}

/// Every derived-analysis-backed query kind, for every node of \p Fn.
std::vector<Request> queryBattery(const PstServer &S, uint64_t Fn) {
  std::vector<Request> Batch;
  // Node ids come from the base image so the battery is identical across
  // servers and rounds; after edits grow a function the extra nodes still
  // answer deterministically (the base ids all stay valid).
  uint32_t Nodes = S.image().cfg(Fn).numNodes();
  Batch.push_back(makeRequest(RequestKind::Regions, Fn));
  for (NodeId N = 0; N < Nodes; ++N) {
    Batch.push_back(makeRequest(RequestKind::Dom, Fn, N));
    Batch.push_back(makeRequest(RequestKind::Cdep, Fn, N));
    Batch.push_back(makeRequest(RequestKind::Region, Fn, N, N / 2));
    Request Phi = makeRequest(RequestKind::Phi, Fn);
    Phi.Defs = {N, static_cast<NodeId>(Nodes - 1)};
    Batch.push_back(Phi);
  }
  return Batch;
}

TEST(DerivedCacheTest, DisabledCacheServesIdenticalAnswersWithNoSlots) {
  ServeOptions On, Off;
  Off.DerivedCache = false;
  PstServer Cached(makeTestImage(), On);
  PstServer Uncached(makeTestImage(), Off);
  ASSERT_NE(Cached.derivedCache(), nullptr);
  ASSERT_EQ(Uncached.derivedCache(), nullptr);

  for (uint64_t Fn = 0; Fn < Cached.numFunctions(); ++Fn)
    for (const Request &R : queryBattery(Cached, Fn))
      ASSERT_EQ(Cached.execute(R), Uncached.execute(R));

  // The uncached server never touched a slot or a counter.
  DerivedCacheStats Off1 = Uncached.derivedCacheStats();
  EXPECT_EQ(Off1.Builds + Off1.Hits + Off1.Waits, 0u);
  // The cached one built exactly one bundle per function.
  DerivedCacheStats On1 = Cached.derivedCacheStats();
  EXPECT_EQ(On1.Builds, Cached.numFunctions());
  EXPECT_GT(On1.BytesBuilt, 0u);
  EXPECT_EQ(Cached.derivedCache()->numSlots(), Cached.numFunctions());
  EXPECT_GT(Cached.derivedCache()->bytesReady(), 0u);
}

TEST(DerivedCacheTest, WarmPassIsAllHitsAndBuildsNothing) {
  PstServer S(makeTestImage());
  std::vector<Request> Batch;
  for (uint64_t Fn = 0; Fn < S.numFunctions(); ++Fn)
    for (const Request &R : queryBattery(S, Fn))
      Batch.push_back(R);

  std::vector<std::string> Cold, Warm;
  S.executeBatch(Batch, Cold);
  DerivedCacheStats AfterCold = S.derivedCacheStats();
  EXPECT_EQ(AfterCold.Builds, S.numFunctions());

  S.executeBatch(Batch, Warm);
  DerivedCacheStats AfterWarm = S.derivedCacheStats();
  EXPECT_EQ(Warm, Cold);
  EXPECT_EQ(AfterWarm.Builds, AfterCold.Builds); // Nothing rebuilt.
  EXPECT_EQ(AfterWarm.BytesBuilt, AfterCold.BytesBuilt);
  EXPECT_EQ(AfterWarm.Hits, AfterCold.Hits + Batch.size());
}

TEST(DerivedCacheTest, NameAndErrorQueriesNeverMaterializeABundle) {
  PstServer S(makeTestImage());
  S.execute(makeRequest(RequestKind::Name, 0));
  S.execute(makeRequest(RequestKind::Dom, 0, 999));   // err: node range.
  S.execute(makeRequest(RequestKind::Name, 999));     // err: fn range.
  DerivedCacheStats St = S.derivedCacheStats();
  EXPECT_EQ(St.Builds, 0u);
  EXPECT_EQ(S.derivedCache()->bytesReady(), 0u);
}

/// The acceptance contract, exercised hard: two servers over identical
/// images — one cached, one not — replay the same deterministic edit/
/// commit stream, and after every commit the full query battery must be
/// byte-identical. Every commit refreezes edited functions into new
/// snapshots, so a cached answer reflecting a *stale* bundle (or an
/// uncached answer diverging from the CSR/LCA paths) fails here.
TEST(DerivedCacheTest, CachedMatchesUncachedAcrossRandomizedEditRounds) {
  ServeOptions On, Off;
  On.NumShards = 2;
  Off.NumShards = 2;
  Off.DerivedCache = false;
  PstServer Cached(makeTestImage(8), On);
  PstServer Uncached(makeTestImage(8), Off);

  uint64_t Rng = 0x5eed0fca11ab1e00ull ^ 0x9e3779b97f4a7c15ull;
  auto Next = [&Rng] {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng;
  };

  for (int Round = 0; Round < 10; ++Round) {
    // Identical edits on both servers, driven off the cached server's
    // writer graphs (both evolve in lockstep, so the ops stay valid or
    // get rejected identically).
    for (int E = 0; E < 4; ++E) {
      uint64_t Fn = Next() % 8;
      Shard &A = Cached.shardOf(Fn);
      Shard &B = Uncached.shardOf(Fn);
      Cfg G = A.writerGraph(Fn);
      if (!G.numEdges())
        continue;
      EdgeId Edge = static_cast<EdgeId>(Next() % G.numEdges());
      NodeId Src = G.source(Edge), Dst = G.target(Edge);
      switch (Next() % 3) {
      case 0:
        A.addBlock(Fn, Src, Dst);
        B.addBlock(Fn, Src, Dst);
        break;
      case 1:
        A.splitBlock(Fn, Src, Dst);
        B.splitBlock(Fn, Src, Dst);
        break;
      default:
        A.insertEdge(Fn, Src, Dst);
        B.insertEdge(Fn, Src, Dst);
        break;
      }
    }
    // shardOf(Fn) maps by Fn % NumShards, so Fn = 0..NumShards-1 visits
    // every shard once.
    for (uint64_t Sh = 0; Sh < Cached.numShards(); ++Sh) {
      Cached.shardOf(Sh).commit();
      Uncached.shardOf(Sh).commit();
    }

    for (uint64_t Fn = 0; Fn < Cached.numFunctions(); ++Fn)
      for (const Request &R : queryBattery(Cached, Fn))
        ASSERT_EQ(Cached.execute(R), Uncached.execute(R))
            << "round " << Round << " fn " << Fn;

    std::string Why;
    for (uint64_t Sh = 0; Sh < Cached.numShards(); ++Sh)
      ASSERT_TRUE(Cached.shardOf(Sh).verifyPublished(&Why))
          << "round " << Round << ": " << Why;
  }
  // The edit rounds really did turn bundles over: more builds than base
  // functions means refrozen snapshots were rebuilt, not reused.
  EXPECT_GT(Cached.derivedCacheStats().Builds, Cached.numFunctions());
}

/// TSan-facing: many readers race the first touch of every slot on a
/// fresh cached server. The once-init protocol must build each base
/// bundle exactly once, everyone else hitting or waiting, and all
/// responses must agree with a serial replay.
TEST(DerivedCacheTest, ConcurrentFirstTouchBuildsAreExactlyOnce) {
  constexpr int NumReaders = 4;
  ServeOptions Opts;
  Opts.NumThreads = 2;
  PstServer S(makeTestImage(), Opts);

  std::vector<Request> Battery;
  for (uint64_t Fn = 0; Fn < S.numFunctions(); ++Fn)
    for (const Request &R : queryBattery(S, Fn))
      Battery.push_back(R);

  std::atomic<bool> Go{false};
  std::vector<std::vector<std::string>> Got(NumReaders);
  std::vector<std::thread> Readers;
  for (int R = 0; R < NumReaders; ++R) {
    Readers.emplace_back([&, R] {
      // The caller-provided-scratch overload is the thread-safe path.
      QueryScratch Sc;
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (const Request &Q : Battery)
        Got[R].push_back(S.execute(Q, Sc));
    });
  }
  Go.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();

  // Exactly one build per function, no matter how the race went. Every
  // query resolves as a build or (possibly after a wait episode) a hit,
  // so hits + builds is exactly the query count; waits are extra
  // episodes, not outcomes.
  DerivedCacheStats St = S.derivedCacheStats();
  EXPECT_EQ(St.Builds, S.numFunctions());
  EXPECT_EQ(St.Hits + St.Builds,
            static_cast<uint64_t>(Battery.size()) * NumReaders);

  for (int R = 1; R < NumReaders; ++R)
    ASSERT_EQ(Got[R], Got[0]) << "reader " << R;
}

/// TSan-facing: readers hammer derived-analysis queries (racing
/// first-touch builds on freshly refrozen snapshots) while a writer
/// commits. Every response must come from a committed epoch's bundle —
/// the idom of the diamond's join is the entry in every epoch, and
/// untouched functions must stay bit-stable throughout.
TEST(DerivedCacheTest, ConcurrentReadersDuringCommits) {
  constexpr int NumReaders = 3;
  constexpr int NumCommits = 40;
  ServeOptions Opts;
  Opts.NumShards = 2;
  Opts.NumThreads = 2;
  PstServer S(makeTestImage(), Opts);

  // Baseline answers for functions the writer never touches.
  std::vector<Request> Stable;
  for (uint64_t Fn = 1; Fn < S.numFunctions(); ++Fn)
    for (const Request &R : queryBattery(S, Fn))
      Stable.push_back(R);
  std::vector<std::string> Baseline;
  S.executeBatch(Stable, Baseline);

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Iterations{0};
  std::vector<std::thread> Readers;
  for (int R = 0; R < NumReaders; ++R) {
    Readers.emplace_back([&] {
      // The caller-provided-scratch overload is the thread-safe path.
      QueryScratch Sc;
      while (!Stop.load(std::memory_order_relaxed)) {
        // fn 0 is the edited one: its bundle is rebuilt first-touch
        // after every commit, racing the other readers.
        ASSERT_EQ(S.execute(makeRequest(RequestKind::Dom, 0, 3), Sc),
                  "ok dom fn=0 node=3 idom=0");
        S.execute(makeRequest(RequestKind::Cdep, 0, 1), Sc);
        Request Phi = makeRequest(RequestKind::Phi, 0);
        Phi.Defs = {1, 2};
        S.execute(Phi, Sc);
        for (size_t I = 0; I < Stable.size(); ++I)
          ASSERT_EQ(S.execute(Stable[I], Sc), Baseline[I]);
        Iterations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int C = 0; C < NumCommits; ++C) {
    ASSERT_NE(S.shardOf(0).addBlock(0, 0, 1), InvalidNode);
    S.shardOf(0).commit();
  }
  // On a single-core host the writer can drain its commits before any
  // reader runs; insist on at least one full reader pass so the fn 0
  // bundle (base or refrozen snapshot) really was exercised. Bounded, so
  // a reader dying on an assertion cannot hang the suite.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (Iterations.load(std::memory_order_relaxed) == 0 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::yield();
  Stop.store(true);
  for (std::thread &T : Readers)
    T.join();

  std::string Why;
  EXPECT_TRUE(S.shardOf(0).verifyPublished(&Why)) << Why;
  // Builds covered the base slots plus refrozen snapshots the readers
  // touched; waits may or may not have happened depending on scheduling,
  // but nothing was ever double-built for the stable functions: their
  // answers never flickered (asserted in-loop above).
  EXPECT_GE(S.derivedCacheStats().Builds, S.numFunctions());
}

} // namespace
