//===- DataflowTest.cpp - dataflow framework tests ------------------------------===//
//
// Part of the PST library test suite: golden facts for the three classic
// problems, and the solver-agreement property sweeps (iterative ==
// PST-elimination == QPG-projected) on hand-written and generated code.
//
//===----------------------------------------------------------------------===//

#include "pst/dataflow/Dataflow.h"

#include "pst/core/ProgramStructureTree.h"
#include "pst/dataflow/Problems.h"
#include "pst/dataflow/Qpg.h"
#include "pst/graph/CfgAlgorithms.h"
#include "pst/workload/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace pst;

namespace {

LoweredFunction compileOne(const std::string &Src) {
  std::vector<Diagnostic> Diags;
  auto Fns = compile(Src, &Diags);
  EXPECT_TRUE(Fns.has_value())
      << (Diags.empty() ? "no diagnostics" : Diags[0].str());
  return std::move((*Fns)[0]);
}

VarId varOf(const LoweredFunction &F, const std::string &Name) {
  for (VarId V = 0; V < F.numVars(); ++V)
    if (F.VarNames[V] == Name)
      return V;
  ADD_FAILURE() << "no variable " << Name;
  return InvalidVar;
}

void expectAllSolversAgree(const LoweredFunction &F,
                           const BitVectorProblem &P) {
  const Cfg &G = F.Graph;
  ProgramStructureTree T = ProgramStructureTree::build(G);
  DataflowSolution It = solveIterative(G, P);
  DataflowSolution El = solveElimination(G, T, P);
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    ASSERT_EQ(It.In[N], El.In[N]) << F.Name << " IN mismatch at node " << N;
    ASSERT_EQ(It.Out[N], El.Out[N])
        << F.Name << " OUT mismatch at node " << N;
  }
  EdgeSolution Sparse = solveOnQpg(G, T, P);
  EdgeSolution Dense = edgeView(G, It);
  for (EdgeId E = 0; E < G.numEdges(); ++E)
    ASSERT_EQ(Sparse.EdgeValue[E], Dense.EdgeValue[E])
        << F.Name << " QPG mismatch on edge " << E;
}

} // namespace

TEST(ReachingDefs, StraightLineKills) {
  LoweredFunction F =
      compileOne("func f(a) { var x = a; x = x + 1; return x; }");
  std::vector<VarId> DefVar;
  BitVectorProblem P = makeReachingDefs(F, &DefVar);
  DataflowSolution S = solveIterative(F.Graph, P);
  // At exit, exactly one def of x reaches (the second), plus a's param
  // def.
  VarId X = varOf(F, "x");
  uint32_t ReachingX = 0;
  S.Out[F.Graph.exit()].forEachSetBit([&](size_t Bit) {
    if (DefVar[Bit] == X)
      ++ReachingX;
  });
  EXPECT_EQ(ReachingX, 1u);
}

TEST(ReachingDefs, BothArmsReachJoin) {
  LoweredFunction F = compileOne(
      "func f(a) { var x = 0; if (a > 0) { x = 1; } else { x = 2; } "
      "return x; }");
  std::vector<VarId> DefVar;
  BitVectorProblem P = makeReachingDefs(F, &DefVar);
  DataflowSolution S = solveIterative(F.Graph, P);
  VarId X = varOf(F, "x");
  uint32_t ReachingX = 0;
  S.In[F.Graph.exit()].forEachSetBit([&](size_t Bit) {
    if (DefVar[Bit] == X)
      ++ReachingX;
  });
  EXPECT_EQ(ReachingX, 2u); // One def from each arm; x=0 is killed.
}

TEST(LiveVariables, DeadAfterLastUse) {
  LoweredFunction F = compileOne(
      "func f(a) { var x = a; var y = x + 1; return y; }");
  BitVectorProblem P = makeLiveVariables(F);
  Cfg R = reverseCfg(F.Graph);
  DataflowSolution S = solveIterative(R, P);
  // Backward reading of the reversed solution: Out[n] is the live-in set
  // of n. 'a' is defined in entry and used in the body block, so it is
  // live into the body; x and y are block-local and live nowhere across
  // block boundaries.
  VarId A = varOf(F, "a");
  VarId Y = varOf(F, "y");
  VarId X = varOf(F, "x");
  NodeId Body = F.useBlocks(A)[0];
  EXPECT_TRUE(S.Out[Body].test(A));
  for (NodeId N = 0; N < F.Graph.numNodes(); ++N) {
    EXPECT_FALSE(S.Out[N].test(X));
    EXPECT_FALSE(S.Out[N].test(Y));
  }
  // Nothing is live out of the function exit.
  EXPECT_TRUE(S.In[R.entry()].none());
}

TEST(LiveVariables, LoopKeepsCounterLive) {
  LoweredFunction F = compileOne(
      "func f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }");
  BitVectorProblem P = makeLiveVariables(F);
  Cfg R = reverseCfg(F.Graph);
  DataflowSolution S = solveIterative(R, P);
  VarId I = varOf(F, "i");
  // i is live on the backedge (used by the next header evaluation).
  uint32_t LiveBlocks = 0;
  for (NodeId N = 0; N < F.Graph.numNodes(); ++N)
    LiveBlocks += S.In[N].test(I); // Live-out of N, reversed view.
  EXPECT_GE(LiveBlocks, 2u);
}

TEST(AvailableExpressions, RecomputationAvailable) {
  LoweredFunction F = compileOne(
      "func f(a, b) { var x = a + b; var y = a + b; return y; }");
  std::vector<std::string> Keys;
  BitVectorProblem P = makeAvailableExpressions(F, &Keys);
  ASSERT_FALSE(Keys.empty());
  DataflowSolution S = solveIterative(F.Graph, P);
  // "a + b" (however it prints) is available at exit.
  uint32_t Bit = UINT32_MAX;
  for (uint32_t K = 0; K < Keys.size(); ++K)
    if (Keys[K].find("a + b") != std::string::npos)
      Bit = K;
  ASSERT_NE(Bit, UINT32_MAX);
  EXPECT_TRUE(S.In[F.Graph.exit()].test(Bit));
}

TEST(AvailableExpressions, KilledByOperandRedefinition) {
  LoweredFunction F = compileOne(
      "func f(a, b) { var x = a + b; a = 0; var y = a + b; return y; }");
  std::vector<std::string> Keys;
  BitVectorProblem P = makeAvailableExpressions(F, &Keys);
  // Everything is in one block; gen/kill must cancel correctly at block
  // level: after the block, a + b is available (recomputed after the
  // kill).
  DataflowSolution S = solveIterative(F.Graph, P);
  uint32_t Bit = UINT32_MAX;
  for (uint32_t K = 0; K < Keys.size(); ++K)
    if (Keys[K].find("a + b") != std::string::npos)
      Bit = K;
  ASSERT_NE(Bit, UINT32_MAX);
  EXPECT_TRUE(S.In[F.Graph.exit()].test(Bit));
}

TEST(AvailableExpressions, IntersectAtJoin) {
  LoweredFunction F = compileOne(R"(
    func f(a, b) {
      var x = 0;
      if (a > 0) { x = a + b; } else { x = 1; }
      var y = a + b;
      return y + x;
    }
  )");
  std::vector<std::string> Keys;
  BitVectorProblem P = makeAvailableExpressions(F, &Keys);
  DataflowSolution S = solveIterative(F.Graph, P);
  // a + b is not available at the join (only one arm computes it), so the
  // block computing y regenerates it; available at exit.
  uint32_t Bit = UINT32_MAX;
  for (uint32_t K = 0; K < Keys.size(); ++K)
    if (Keys[K].find("a + b") != std::string::npos)
      Bit = K;
  ASSERT_NE(Bit, UINT32_MAX);
  // Find the join block (two preds, before y's def block).
  VarId Y = varOf(F, "y");
  NodeId YBlock = F.defBlocks(Y)[0];
  EXPECT_FALSE(S.In[YBlock].test(Bit));
  EXPECT_TRUE(S.Out[YBlock].test(Bit));
}

TEST(Qpg, TransparentLoopBypassed) {
  // Only the first and last blocks touch x; the loop in the middle is
  // transparent for the single-expression problem.
  LoweredFunction F = compileOne(R"(
    func f(a, b, n) {
      var x = a + b;
      var i = 0;
      var s = 0;
      while (i < n) { s = s + 1; i = i + 1; }
      var y = a + b;
      return y + x + s;
    }
  )");
  BitVectorProblem P = makeSingleExprAvailability(F, "a + b");
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  Qpg Q = buildQpg(F.Graph, T, P);
  EXPECT_LT(Q.numNodes(), F.Graph.numNodes());
  // And the projected solution still matches the dense one.
  EdgeSolution Sparse = solveOnQpg(F.Graph, T, P);
  EdgeSolution Dense = edgeView(F.Graph, solveIterative(F.Graph, P));
  for (EdgeId E = 0; E < F.Graph.numEdges(); ++E)
    EXPECT_EQ(Sparse.EdgeValue[E], Dense.EdgeValue[E]) << "edge " << E;
}

TEST(Qpg, NothingInterestingCollapsesToSpine) {
  LoweredFunction F = compileOne(R"(
    func f(n) {
      var i = 0;
      while (i < n) { if (i % 2 == 0) { i = i + 2; } else { i = i + 1; } }
      return i;
    }
  )");
  // An expression that appears nowhere: every node is transparent.
  BitVectorProblem P = makeSingleExprAvailability(F, "zz + qq");
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  Qpg Q = buildQpg(F.Graph, T, P);
  EXPECT_LE(Q.numNodes(), F.Graph.numNodes());
  EdgeSolution Sparse = solveOnQpg(F.Graph, T, P);
  EdgeSolution Dense = edgeView(F.Graph, solveIterative(F.Graph, P));
  for (EdgeId E = 0; E < F.Graph.numEdges(); ++E)
    EXPECT_EQ(Sparse.EdgeValue[E], Dense.EdgeValue[E]) << "edge " << E;
}

TEST(Solvers, AgreeOnGoldens) {
  const char *Sources[] = {
      "func f(a) { var x = a; return x; }",
      "func f(a) { var x = 0; if (a > 0) { x = 1; } else { x = 2; } "
      "return x; }",
      "func f(n) { var i = 0; var s = 0; while (i < n) { s = s + i; "
      "i = i + 1; } return s; }",
      "func f(n) { var i = 0; do { i = i + 1; } while (i < n); return i; }",
      "func f(a) { var x = 0; switch (a) { case 0: x = 1; case 1: x = 2; "
      "default: x = 3; } return x; }",
      "func f(a) { var x = 0; if (a > 0) { goto mid; } while (x < 10) { "
      "x = x + 1; mid: x = x + 2; } return x; }",
  };
  for (const char *Src : Sources) {
    LoweredFunction F = compileOne(Src);
    expectAllSolversAgree(F, makeReachingDefs(F));
    expectAllSolversAgree(F, makeAvailableExpressions(F));
  }
}

class DataflowRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DataflowRandomTest, SolversAgreeOnGeneratedPrograms) {
  Rng R(GetParam() * 409 + 31);
  ProgramGenOptions Opts;
  Opts.TargetStatements = 15 + static_cast<uint32_t>(R.nextBelow(100));
  Opts.GotoProb = GetParam() % 4 == 0 ? 0.06 : 0.0;
  Function Fn = generateFunction(R, Opts, "gen");
  auto L = lowerFunction(Fn);
  ASSERT_TRUE(L.has_value());
  expectAllSolversAgree(*L, makeReachingDefs(*L));
  expectAllSolversAgree(*L, makeAvailableExpressions(*L));

  // Backward liveness: iterative vs elimination on the reversed graph.
  BitVectorProblem P = makeLiveVariables(*L);
  Cfg Rev = reverseCfg(L->Graph);
  ProgramStructureTree T = ProgramStructureTree::build(Rev);
  DataflowSolution It = solveIterative(Rev, P);
  DataflowSolution El = solveElimination(Rev, T, P);
  for (NodeId N = 0; N < Rev.numNodes(); ++N) {
    ASSERT_EQ(It.In[N], El.In[N]) << "seed " << GetParam();
    ASSERT_EQ(It.Out[N], El.Out[N]) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataflowRandomTest,
                         ::testing::Range<uint64_t>(0, 60));

// The PST of a graph and of its reverse have the same SESE regions
// (entry/exit swap); liveness via QPG on the reversed graph must also
// agree.
TEST(Qpg, BackwardLivenessSparse) {
  LoweredFunction F = compileOne(R"(
    func f(a, n) {
      var x = a;
      var i = 0;
      while (i < n) { i = i + 1; }
      return x + i;
    }
  )");
  BitVectorProblem P = makeLiveVariables(F);
  Cfg Rev = reverseCfg(F.Graph);
  ProgramStructureTree T = ProgramStructureTree::build(Rev);
  EdgeSolution Sparse = solveOnQpg(Rev, T, P);
  EdgeSolution Dense = edgeView(Rev, solveIterative(Rev, P));
  for (EdgeId E = 0; E < Rev.numEdges(); ++E)
    EXPECT_EQ(Sparse.EdgeValue[E], Dense.EdgeValue[E]) << "edge " << E;
}

//===----------------------------------------------------------------------===//
// Sparse evaluation graphs [CCF91]
//===----------------------------------------------------------------------===//

#include "pst/dataflow/Seg.h"

TEST(Seg, MembershipForSingleExpr) {
  LoweredFunction F = compileOne(R"(
    func f(a, b, n) {
      var x = a + b;
      var i = 0;
      while (i < n) { i = i + 1; }
      var y = a + b;
      return y + x;
    }
  )");
  BitVectorProblem P = makeSingleExprAvailability(F, "(a + b)");
  DomTree DT = DomTree::buildIterative(F.Graph);
  DominanceFrontiers DF(F.Graph, DT);
  Seg S = buildSeg(F.Graph, DT, DF, P);
  // Far fewer SEG nodes than CFG nodes; entry is node 0.
  EXPECT_LT(S.numNodes(), F.Graph.numNodes());
  EXPECT_EQ(S.Nodes[0], F.Graph.entry());
  // Every CFG node is governed by something.
  for (NodeId N = 0; N < F.Graph.numNodes(); ++N)
    EXPECT_NE(S.GovernedBy[N], UINT32_MAX) << "node " << N;
}

TEST(Seg, SolutionMatchesIterativeOnGoldens) {
  const char *Sources[] = {
      "func f(a) { var x = a; return x; }",
      "func f(a) { var x = 0; if (a > 0) { x = 1; } else { x = 2; } "
      "return x; }",
      "func f(n) { var i = 0; var s = 0; while (i < n) { s = s + i; "
      "i = i + 1; } return s; }",
      "func f(a) { var x = 0; if (a > 0) { goto mid; } while (x < 10) { "
      "x = x + 1; mid: x = x + 2; } return x; }",
  };
  for (const char *Src : Sources) {
    LoweredFunction F = compileOne(Src);
    for (BitVectorProblem P :
         {makeReachingDefs(F), makeAvailableExpressions(F)}) {
      DomTree DT = DomTree::buildIterative(F.Graph);
      DominanceFrontiers DF(F.Graph, DT);
      DataflowSolution A = solveIterative(F.Graph, P);
      DataflowSolution B = solveOnSeg(F.Graph, DT, DF, P);
      for (NodeId N = 0; N < F.Graph.numNodes(); ++N) {
        ASSERT_EQ(A.In[N], B.In[N]) << Src << " node " << N;
        ASSERT_EQ(A.Out[N], B.Out[N]) << Src << " node " << N;
      }
    }
  }
}

class SegRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SegRandomTest, MatchesIterativeOnGeneratedPrograms) {
  Rng R(GetParam() * 883 + 57);
  ProgramGenOptions Opts;
  Opts.TargetStatements = 15 + static_cast<uint32_t>(R.nextBelow(90));
  Opts.GotoProb = GetParam() % 3 == 0 ? 0.06 : 0.0;
  Function Fn = generateFunction(R, Opts, "gen");
  auto L = lowerFunction(Fn);
  ASSERT_TRUE(L.has_value());
  const LoweredFunction &F = *L;
  DomTree DT = DomTree::buildIterative(F.Graph);
  DominanceFrontiers DF(F.Graph, DT);
  for (BitVectorProblem P :
       {makeReachingDefs(F), makeAvailableExpressions(F)}) {
    DataflowSolution A = solveIterative(F.Graph, P);
    DataflowSolution B = solveOnSeg(F.Graph, DT, DF, P);
    for (NodeId N = 0; N < F.Graph.numNodes(); ++N) {
      ASSERT_EQ(A.In[N], B.In[N]) << "seed " << GetParam();
      ASSERT_EQ(A.Out[N], B.Out[N]) << "seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegRandomTest,
                         ::testing::Range<uint64_t>(0, 60));

//===----------------------------------------------------------------------===//
// Statement-level expansion
//===----------------------------------------------------------------------===//

TEST(StatementLevel, ExpansionShape) {
  LoweredFunction F = compileOne(
      "func f(a) { var x = a; var y = x + 1; var z = y * 2; return z; }");
  std::vector<NodeId> FirstOf;
  LoweredFunction S = expandToStatementLevel(F, &FirstOf);
  EXPECT_TRUE(validateCfg(S.Graph));
  // One instruction per block.
  uint64_t Stmts = 0;
  for (const auto &Block : S.Code) {
    EXPECT_LE(Block.size(), 1u);
    Stmts += Block.size();
  }
  uint64_t Orig = 0;
  for (const auto &Block : F.Code)
    Orig += Block.size();
  EXPECT_EQ(Stmts, Orig);
  EXPECT_EQ(FirstOf.size(), F.Graph.numNodes());
}

TEST(StatementLevel, AnalysesStillAgree) {
  LoweredFunction F = compileOne(R"(
    func f(a, n) {
      var s = 0;
      var i = 0;
      while (i < n) { s = s + a; i = i + 1; }
      return s;
    }
  )");
  LoweredFunction S = expandToStatementLevel(F);
  ASSERT_TRUE(validateCfg(S.Graph));
  ProgramStructureTree T = ProgramStructureTree::build(S.Graph);
  BitVectorProblem P = makeReachingDefs(S);
  DataflowSolution A = solveIterative(S.Graph, P);
  DataflowSolution B = solveElimination(S.Graph, T, P);
  for (NodeId N = 0; N < S.Graph.numNodes(); ++N) {
    ASSERT_EQ(A.In[N], B.In[N]);
    ASSERT_EQ(A.Out[N], B.Out[N]);
  }
}
