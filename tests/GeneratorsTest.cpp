//===- GeneratorsTest.cpp - workload generator tests ---------------------------===//
//
// Part of the PST library test suite.
//
//===----------------------------------------------------------------------===//

#include "pst/workload/CfgGenerators.h"

#include "pst/graph/CfgAlgorithms.h"

#include <gtest/gtest.h>

using namespace pst;

TEST(Generators, ChainShape) {
  Cfg G = chainCfg(5);
  EXPECT_EQ(G.numNodes(), 7u);
  EXPECT_EQ(G.numEdges(), 6u);
  EXPECT_TRUE(validateCfg(G));
}

TEST(Generators, DiamondLadderShape) {
  Cfg G = diamondLadderCfg(4);
  EXPECT_EQ(G.numNodes(), 2u + 4 * 4);
  EXPECT_TRUE(validateCfg(G));
  EXPECT_TRUE(isReducible(G));
}

TEST(Generators, NestedWhileValid) {
  for (uint32_t D = 1; D <= 6; ++D) {
    Cfg G = nestedWhileCfg(D, 2);
    EXPECT_TRUE(validateCfg(G)) << "depth " << D;
    EXPECT_TRUE(isReducible(G)) << "depth " << D;
  }
}

TEST(Generators, NestedRepeatUntilValid) {
  for (uint32_t D = 1; D <= 8; ++D) {
    Cfg G = nestedRepeatUntilCfg(D);
    EXPECT_TRUE(validateCfg(G)) << "depth " << D;
    EXPECT_TRUE(isReducible(G)) << "depth " << D;
  }
}

TEST(Generators, IrreducibleIsIrreducible) {
  Cfg G = irreducibleCfg(2);
  EXPECT_TRUE(validateCfg(G));
  EXPECT_FALSE(isReducible(G));
}

TEST(Generators, PaperFigureValid) {
  EXPECT_TRUE(validateCfg(paperFigure1Cfg()));
}

class RandomCfgValidity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomCfgValidity, AlwaysValid) {
  Rng R(GetParam());
  RandomCfgOptions Opts;
  Opts.NumNodes = 2 + static_cast<uint32_t>(R.nextBelow(40));
  Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(60));
  Opts.SelfLoopProb = 0.15;
  Opts.ParallelProb = 0.15;
  Cfg G = randomBackboneCfg(R, Opts);
  std::string Why;
  EXPECT_TRUE(validateCfg(G, &Why)) << Why;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCfgValidity,
                         ::testing::Range<uint64_t>(0, 100));

TEST(RandomCfg, DeterministicForSeed) {
  RandomCfgOptions Opts;
  Opts.NumNodes = 12;
  Opts.NumExtraEdges = 10;
  Rng A(5), B(5);
  Cfg GA = randomBackboneCfg(A, Opts);
  Cfg GB = randomBackboneCfg(B, Opts);
  ASSERT_EQ(GA.numEdges(), GB.numEdges());
  for (EdgeId E = 0; E < GA.numEdges(); ++E) {
    EXPECT_EQ(GA.source(E), GB.source(E));
    EXPECT_EQ(GA.target(E), GB.target(E));
  }
}

TEST(RandomCfg, ForwardOnlyIsAcyclicApartFromSelfLoops) {
  Rng R(77);
  RandomCfgOptions Opts;
  Opts.NumNodes = 20;
  Opts.NumExtraEdges = 25;
  Opts.AllowBackEdges = false;
  Opts.SelfLoopProb = 0.0;
  Cfg G = randomBackboneCfg(R, Opts);
  EXPECT_TRUE(validateCfg(G));
  EXPECT_TRUE(isReducible(G)); // A DAG is always reducible.
}
