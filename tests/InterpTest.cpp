//===- InterpTest.cpp - interpreter & semantic validation tests ------------------===//
//
// Part of the PST library test suite:
//  * golden executions of both interpreters,
//  * differential AST-vs-CFG execution on generated programs (validates
//    the lowering end to end),
//  * the *dynamic* control-region theorem: nodes that are cycle equivalent
//    in G + (end -> start) execute the same number of times on every
//    complete run.
//
//===----------------------------------------------------------------------===//

#include "pst/lang/Interp.h"

#include "pst/cdg/ControlRegions.h"
#include "pst/graph/CfgAlgorithms.h"
#include "pst/lang/Parser.h"
#include "pst/workload/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace pst;

namespace {

Function parseOne(const std::string &Src) {
  std::vector<Diagnostic> Diags;
  auto P = parseProgram(Src, &Diags);
  EXPECT_TRUE(P.has_value())
      << (Diags.empty() ? "no diagnostics" : Diags[0].str());
  return std::move(P->Functions[0]);
}

LoweredFunction lowerOne(const Function &F) {
  std::vector<Diagnostic> Diags;
  auto L = lowerFunction(F, &Diags);
  EXPECT_TRUE(L.has_value())
      << (Diags.empty() ? "no diagnostics" : Diags[0].str());
  return std::move(*L);
}

} // namespace

TEST(AstInterp, ArithmeticAndReturn) {
  Function F = parseOne("func f(a, b) { return a * 10 + b; }");
  ExecResult R = runAst(F, {4, 2});
  EXPECT_TRUE(R.Finished);
  EXPECT_EQ(R.ReturnValue, 42);
}

TEST(AstInterp, TotalDivision) {
  Function F = parseOne("func f(a) { return 10 / a + 7 % a; }");
  ExecResult R = runAst(F, {0});
  EXPECT_TRUE(R.Finished);
  EXPECT_EQ(R.ReturnValue, 0); // 10/0 == 0 and 7%0 == 0.
}

TEST(AstInterp, LoopSum) {
  Function F = parseOne(
      "func f(n) { var s = 0; var i = 1; while (i <= n) { s = s + i; "
      "i = i + 1; } return s; }");
  EXPECT_EQ(runAst(F, {10}).ReturnValue, 55);
  EXPECT_EQ(runAst(F, {0}).ReturnValue, 0);
}

TEST(AstInterp, BreakContinueSwitch) {
  Function F = parseOne(R"(
    func f(n) {
      var s = 0;
      var i = 0;
      while (i < n) {
        i = i + 1;
        if (i % 3 == 0) { continue; }
        if (i > 7) { break; }
        switch (i % 2) {
          case 0: s = s + 10;
          case 1: s = s + 1;
          default: s = s + 100;
        }
      }
      return s;
    }
  )");
  ExecResult R = runAst(F, {100});
  EXPECT_TRUE(R.Finished);
  // i=1:+1, 2:+10, 3 skip, 4:+10, 5:+1, 6 skip, 7:+1, 8 breaks.
  EXPECT_EQ(R.ReturnValue, 23);
}

TEST(AstInterp, BudgetStopsInfiniteLoop) {
  Function F = parseOne("func f() { var x = 1; while (x > 0) { x = 2; } }");
  ExecResult R = runAst(F, {}, /*MaxSteps=*/1000);
  EXPECT_FALSE(R.Finished);
}

TEST(AstInterp, GotoUnsupported) {
  Function F = parseOne("func f() { l: goto l; }");
  EXPECT_FALSE(runAst(F, {}).Finished);
}

TEST(AstInterp, ImplicitReturnZero) {
  Function F = parseOne("func f(a) { var x = a + 1; }");
  ExecResult R = runAst(F, {5});
  EXPECT_TRUE(R.Finished);
  EXPECT_EQ(R.ReturnValue, 0);
}

TEST(CfgInterp, MatchesAstOnGoldens) {
  const char *Sources[] = {
      "func f(a, b) { return a * 10 + b; }",
      "func f(a) { var x = 0; if (a > 0) { x = 1; } else { x = 2; } "
      "return x * a; }",
      "func f(n) { var s = 0; var i = 1; while (i <= n) { s = s + i; "
      "i = i + 1; } return s; }",
      "func f(n) { var i = 0; do { i = i + 2; } while (i < n); return i; }",
      "func f(n) { var s = 0; var i = 0; for (i = 0; i < n; i = i + 1) { "
      "s = s + i * i; } return s; }",
      "func f(a) { var x = 0; switch (a % 3) { case 0: x = 7; case 1: "
      "x = 8; } return x; }",
      "func f(a) { return work(a, a + 1); }",
  };
  for (const char *Src : Sources) {
    Function F = parseOne(Src);
    LoweredFunction L = lowerOne(F);
    for (int64_t Arg : {-3, 0, 1, 5, 12}) {
      ExecResult A = runAst(F, {Arg, Arg + 1});
      CfgExecResult C = runLowered(L, {Arg, Arg + 1});
      ASSERT_TRUE(A.Finished && C.Finished) << Src << " arg " << Arg;
      ASSERT_EQ(A.ReturnValue, C.ReturnValue) << Src << " arg " << Arg;
    }
  }
}

TEST(CfgInterp, GotoExecutes) {
  // The CFG interpreter handles gotos the AST walker does not.
  Function F = parseOne(R"(
    func f(n) {
      var i = 0;
      top:
      i = i + 1;
      if (i < n) { goto top; }
      return i;
    }
  )");
  LoweredFunction L = lowerOne(F);
  CfgExecResult R = runLowered(L, {5});
  EXPECT_TRUE(R.Finished);
  EXPECT_EQ(R.ReturnValue, 5);
}

TEST(CfgInterp, BlockCountsAreSane) {
  Function F = parseOne(
      "func f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }");
  LoweredFunction L = lowerOne(F);
  CfgExecResult R = runLowered(L, {4});
  ASSERT_TRUE(R.Finished);
  EXPECT_EQ(R.BlockCounts[L.Graph.entry()], 1u);
  EXPECT_EQ(R.BlockCounts[L.Graph.exit()], 1u);
  // The loop body runs 4 times; the header 5 times.
  uint64_t MaxCount = 0;
  for (uint64_t C : R.BlockCounts)
    MaxCount = std::max(MaxCount, C);
  EXPECT_EQ(MaxCount, 5u);
}

class DifferentialExecution : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialExecution, AstAndCfgAgreeOnGeneratedPrograms) {
  Rng R(GetParam() * 1201 + 17);
  ProgramGenOptions Opts;
  Opts.TargetStatements = 10 + static_cast<uint32_t>(R.nextBelow(80));
  Opts.GotoProb = 0.0; // The AST walker does not model gotos.
  Function F = generateFunction(R, Opts, "gen");
  LoweredFunction L = lowerOne(F);

  for (int Trial = 0; Trial < 4; ++Trial) {
    std::vector<int64_t> Args;
    for (uint32_t I = 0; I < Opts.NumParams; ++I)
      Args.push_back(R.nextInRange(-20, 20));
    ExecResult A = runAst(F, Args, 200000);
    CfgExecResult C = runLowered(L, Args, 400000);
    if (!A.Finished || !C.Finished)
      continue; // Ran into the budget (e.g. a large generated loop nest).
    ASSERT_EQ(A.ReturnValue, C.ReturnValue)
        << "seed " << GetParam() << " trial " << Trial << "\n"
        << formatFunction(F);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialExecution,
                         ::testing::Range<uint64_t>(0, 120));

// Dynamic control-region check: a complete run's trace plus the return
// edge is a closed walk; closed walks decompose into simple cycles, and a
// simple cycle contains two cycle-equivalent nodes both-or-neither (each
// at most once). Hence equal per-run execution counts within a class.
class DynamicControlRegions : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicControlRegions, CycleEquivalentNodesRunEquallyOften) {
  Rng R(GetParam() * 907 + 61);
  ProgramGenOptions Opts;
  Opts.TargetStatements = 10 + static_cast<uint32_t>(R.nextBelow(70));
  Opts.GotoProb = GetParam() % 3 == 0 ? 0.08 : 0.0; // Gotos welcome here.
  Function F = generateFunction(R, Opts, "gen");
  LoweredFunction L = lowerOne(F);
  ControlRegionsResult CR = computeControlRegionsLinear(L.Graph);

  for (int Trial = 0; Trial < 3; ++Trial) {
    std::vector<int64_t> Args;
    for (uint32_t I = 0; I < Opts.NumParams; ++I)
      Args.push_back(R.nextInRange(-10, 30));
    CfgExecResult Run = runLowered(L, Args, 400000);
    if (!Run.Finished)
      continue;
    // Per class, all executed counts must coincide.
    std::vector<int64_t> ClassCount(CR.NumClasses, -1);
    for (NodeId N = 0; N < L.Graph.numNodes(); ++N) {
      int64_t C = static_cast<int64_t>(Run.BlockCounts[N]);
      int64_t &Slot = ClassCount[CR.NodeClass[N]];
      if (Slot < 0)
        Slot = C;
      ASSERT_EQ(Slot, C) << "seed " << GetParam() << " node " << N << " ("
                         << L.Graph.nodeName(N) << ") trial " << Trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicControlRegions,
                         ::testing::Range<uint64_t>(0, 120));

// And the contrast: the *weak* (CD-set) partition does NOT guarantee equal
// execution counts — the loop-header/body counterexample from the Theorem
// 7 erratum, observed dynamically.
TEST(DynamicControlRegionsErratum, WeakClassesCanDisagreeOnCounts) {
  Function F = parseOne(
      "func f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }");
  LoweredFunction L = lowerOne(F);
  ControlRegionsResult Weak = computeControlRegionsFOW(L.Graph);
  CfgExecResult Run = runLowered(L, {3});
  ASSERT_TRUE(Run.Finished);
  bool SomeWeakClassDisagrees = false;
  for (NodeId A = 0; A < L.Graph.numNodes(); ++A)
    for (NodeId B = A + 1; B < L.Graph.numNodes(); ++B)
      if (Weak.NodeClass[A] == Weak.NodeClass[B] &&
          Run.BlockCounts[A] != Run.BlockCounts[B])
        SomeWeakClassDisagrees = true;
  EXPECT_TRUE(SomeWeakClassDisagrees)
      << "expected the header (4 runs) and body (3 runs) to share a weak "
         "class";
}
