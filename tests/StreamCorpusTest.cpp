//===- StreamCorpusTest.cpp - streaming corpus + out-of-core image builds ------===//
//
// Part of the PST library (see pst/workload/CorpusStream.h and
// pst/image/CorpusImage.h for the references).
//
// Coverage for the streaming million-function pipeline:
//  1. Producer determinism: the chunked stream is chunk-oblivious (the
//     same corpus at chunk sizes 1, 7 and 64 byte for byte) and
//     replayable (reset() reproduces the first pass exactly) — the two
//     properties the two-pass out-of-core build depends on.
//  2. Byte identity: the streamed file build reproduces the in-memory
//     buildImage output bit for bit on the 254-procedure paper corpus and
//     on a generated stream corpus, at chunk sizes {1, 7, 1024} and
//     thread counts {1, hardware}.
//  3. Streamed mapped analysis: analyzeCorpusStream over small windows
//     delivers results identical to the materializing analyzeCorpus, in
//     strict function order, with release() leaving the mapping usable.
//  4. verifyImageFile: accepts a good file and rejects payload
//     corruption, truncation and missing files with clear diagnostics —
//     without ever mapping the whole image.
//
//===----------------------------------------------------------------------===//

#include "pst/workload/CorpusStream.h"

#include "pst/cdg/ControlRegions.h"
#include "pst/core/ProgramStructureTree.h"
#include "pst/image/CorpusImage.h"
#include "pst/runtime/BatchAnalyzer.h"
#include "pst/workload/Corpus.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace pst;

namespace {

/// The paper corpus as (graph pointer, name) spans for the builders.
struct CorpusHandles {
  std::vector<CorpusFunction> Corpus;
  std::vector<const Cfg *> Graphs;
  std::vector<std::string> Names;

  explicit CorpusHandles(uint64_t Seed) : Corpus(generatePaperCorpus(Seed)) {
    for (const CorpusFunction &C : Corpus) {
      Graphs.push_back(&C.Fn.Graph);
      Names.push_back(C.Fn.Name);
    }
  }
};

/// Structural fingerprint of a CFG (labels, edge lists in id order,
/// entry/exit) — FNV-1a over everything the image stores.
uint64_t cfgFingerprint(const Cfg &G, const std::string &Name) {
  uint64_t H = image::fnv1aUpdate(image::Fnv1aBasis, Name.data(), Name.size());
  auto Mix = [&H](uint64_t V) { H = image::fnv1aUpdate(H, &V, sizeof(V)); };
  Mix(G.numNodes());
  Mix(G.numEdges());
  Mix(G.entry());
  Mix(G.exit());
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const std::string &L = G.node(N).Label;
    H = image::fnv1aUpdate(H, L.data(), L.size());
    for (EdgeId E : G.succEdges(N)) {
      Mix(G.source(E));
      Mix(G.target(E));
    }
  }
  return H;
}

/// Fingerprints of every function of a stream corpus at one chunk size.
std::vector<uint64_t> streamFingerprints(const StreamCorpusOptions &Opts,
                                         size_t ChunkFunctions) {
  std::vector<uint64_t> Out;
  CorpusStream S(Opts, ChunkFunctions);
  CorpusChunk C;
  while (S.next(C)) {
    EXPECT_EQ(C.Begin, Out.size());
    for (size_t K = 0; K < C.size(); ++K)
      Out.push_back(cfgFingerprint(C.Graphs[K], C.Names[K]));
  }
  return Out;
}

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  EXPECT_TRUE(IS.good()) << Path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(IS),
                              std::istreambuf_iterator<char>());
}

unsigned hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 2;
}

//===----------------------------------------------------------------------===//
// Producer determinism
//===----------------------------------------------------------------------===//

TEST(CorpusStream, ChunkObliviousAcrossChunkSizes) {
  StreamCorpusOptions Opts;
  Opts.Count = 64;
  // Isolated regeneration is the reference; every chunking must match it.
  std::vector<uint64_t> Ref;
  Cfg G;
  std::string Name;
  for (uint64_t I = 0; I < Opts.Count; ++I) {
    generateStreamFunction(Opts, I, G, Name);
    Ref.push_back(cfgFingerprint(G, Name));
  }
  for (size_t Chunk : {size_t(1), size_t(7), size_t(64), size_t(4096)})
    EXPECT_EQ(streamFingerprints(Opts, Chunk), Ref) << "chunk " << Chunk;
}

TEST(CorpusStream, ResetReplaysTheStreamExactly) {
  StreamCorpusOptions Opts;
  Opts.Count = 40;
  CorpusStream S(Opts, 9);
  CorpusChunk C;
  std::vector<uint64_t> First;
  while (S.next(C))
    for (size_t K = 0; K < C.size(); ++K)
      First.push_back(cfgFingerprint(C.Graphs[K], C.Names[K]));
  EXPECT_EQ(First.size(), Opts.Count);
  EXPECT_FALSE(S.next(C));
  S.reset();
  std::vector<uint64_t> Second;
  while (S.next(C))
    for (size_t K = 0; K < C.size(); ++K)
      Second.push_back(cfgFingerprint(C.Graphs[K], C.Names[K]));
  EXPECT_EQ(First, Second);
}

TEST(CorpusStream, SeedSelectsTheCorpus) {
  StreamCorpusOptions A, B;
  A.Count = B.Count = 16;
  B.Seed = A.Seed + 1;
  EXPECT_NE(streamFingerprints(A, 8), streamFingerprints(B, 8));
}

//===----------------------------------------------------------------------===//
// Streamed build vs in-memory build: byte identity
//===----------------------------------------------------------------------===//

/// Runs buildImageStream over \p Produce and expects the file to equal
/// \p Expected byte for byte.
void expectStreamBuildMatches(uint64_t NumFunctions,
                              const ChunkProducer &Produce, size_t Chunk,
                              unsigned Threads,
                              const std::vector<uint8_t> &Expected,
                              const char *What) {
  BatchOptions BO;
  BO.NumThreads = Threads;
  BatchAnalyzer A(BO);
  std::string Path = ::testing::TempDir() + "stream_build_" + What + "_" +
                     std::to_string(Chunk) + "_" + std::to_string(Threads) +
                     ".img";
  std::string Error;
  ASSERT_TRUE(A.buildImageStream(NumFunctions, Produce, Chunk, Path, &Error))
      << What << ": " << Error;
  EXPECT_TRUE(verifyImageFile(Path, &Error)) << What << ": " << Error;
  std::vector<uint8_t> Got = readFileBytes(Path);
  std::remove(Path.c_str());
  ASSERT_EQ(Got.size(), Expected.size())
      << What << " chunk " << Chunk << " threads " << Threads;
  ASSERT_TRUE(Got == Expected)
      << What << " chunk " << Chunk << " threads " << Threads
      << ": streamed image diverges from in-memory build";
}

TEST(StreamImageBuild, ByteIdentityOnPaperCorpus) {
  CorpusHandles H(/*Seed=*/1994);
  std::vector<uint8_t> Expected = buildCorpusImage(H.Graphs, H.Names);
  ChunkProducer Produce = [&H](uint64_t Begin, uint64_t Count,
                               std::vector<Cfg> &Graphs,
                               std::vector<std::string> &Names) {
    Graphs.clear();
    Names.clear();
    for (uint64_t K = 0; K < Count; ++K) {
      Graphs.push_back(*H.Graphs[Begin + K]);
      Names.push_back(H.Names[Begin + K]);
    }
  };
  for (size_t Chunk : {size_t(1), size_t(7), size_t(1024)})
    for (unsigned Threads : {1u, hardwareThreads()})
      expectStreamBuildMatches(H.Graphs.size(), Produce, Chunk, Threads,
                               Expected, "paper");
}

TEST(StreamImageBuild, ByteIdentityOnGeneratedStreamCorpus) {
  // The generated corpus (same mix as the gen10k bench corpus), small
  // enough to materialize for the reference build.
  StreamCorpusOptions Opts;
  Opts.Count = 600;
  std::vector<Cfg> All(Opts.Count);
  std::vector<std::string> Names(Opts.Count);
  for (uint64_t I = 0; I < Opts.Count; ++I)
    generateStreamFunction(Opts, I, All[I], Names[I]);
  std::vector<uint8_t> Expected = BatchAnalyzer().buildImage(All, Names);

  ChunkProducer Produce = [&Opts](uint64_t Begin, uint64_t Count,
                                  std::vector<Cfg> &Graphs,
                                  std::vector<std::string> &OutNames) {
    Graphs.resize(Count);
    OutNames.resize(Count);
    for (uint64_t K = 0; K < Count; ++K)
      generateStreamFunction(Opts, Begin + K, Graphs[K], OutNames[K]);
  };
  for (size_t Chunk : {size_t(1), size_t(7), size_t(1024)})
    for (unsigned Threads : {1u, hardwareThreads()})
      expectStreamBuildMatches(Opts.Count, Produce, Chunk, Threads, Expected,
                               "gen");
}

TEST(StreamImageBuild, CorpusStreamIsTheCanonicalProducer) {
  // The pstool/bench wiring: CorpusStream::next as the chunk producer via
  // per-index regeneration must agree with the serial builder too.
  StreamCorpusOptions Opts;
  Opts.Count = 97; // Deliberately not a multiple of any chunk size.
  std::vector<Cfg> All(Opts.Count);
  std::vector<std::string> Names(Opts.Count);
  for (uint64_t I = 0; I < Opts.Count; ++I)
    generateStreamFunction(Opts, I, All[I], Names[I]);
  std::vector<const Cfg *> Ptrs;
  for (const Cfg &G : All)
    Ptrs.push_back(&G);
  std::vector<uint8_t> Expected = buildCorpusImage(Ptrs, Names);

  ChunkProducer Produce = [&Opts](uint64_t Begin, uint64_t Count,
                                  std::vector<Cfg> &Graphs,
                                  std::vector<std::string> &OutNames) {
    Graphs.resize(Count);
    OutNames.resize(Count);
    for (uint64_t K = 0; K < Count; ++K)
      generateStreamFunction(Opts, Begin + K, Graphs[K], OutNames[K]);
  };
  expectStreamBuildMatches(Opts.Count, Produce, 16, 1, Expected, "canon");
}

//===----------------------------------------------------------------------===//
// Streamed mapped analysis
//===----------------------------------------------------------------------===//

TEST(StreamAnalysis, SinkSeesMaterializedResultsInOrder) {
  CorpusHandles H(/*Seed=*/1994);
  BatchAnalyzer A;
  std::vector<uint8_t> Bytes = buildCorpusImage(H.Graphs, H.Names);
  std::string Path = ::testing::TempDir() + "stream_analysis.img";
  std::string Error;
  ASSERT_TRUE(writeImageFile(Path, Bytes, &Error)) << Error;
  CorpusImage Img = CorpusImage::map(Path, &Error);
  ASSERT_TRUE(Img.valid()) << Error;

  std::vector<FunctionAnalysis> Ref = A.analyzeCorpus(Img);
  ASSERT_EQ(Ref.size(), H.Graphs.size());

  uint64_t NextExpected = 0;
  // A window far smaller than the corpus, so the release()-between-windows
  // path runs many times.
  A.analyzeCorpusStream(
      Img,
      [&](uint64_t Index, const FunctionAnalysis &FA) {
        ASSERT_EQ(Index, NextExpected) << "sink must run in function order";
        ++NextExpected;
        const FunctionAnalysis &R = Ref[Index];
        EXPECT_EQ(FA.Pst.numRegions(), R.Pst.numRegions()) << H.Names[Index];
        ASSERT_EQ(FA.Pst.regionTable().size(), R.Pst.regionTable().size());
        EXPECT_EQ(0, std::memcmp(FA.Pst.regionTable().data(),
                                 R.Pst.regionTable().data(),
                                 R.Pst.regionTable().size_bytes()))
            << H.Names[Index];
        EXPECT_EQ(FA.ControlRegions.NumClasses, R.ControlRegions.NumClasses)
            << H.Names[Index];
        EXPECT_EQ(FA.ControlRegions.NodeClass, R.ControlRegions.NodeClass)
            << H.Names[Index];
      },
      /*WindowFunctions=*/17);
  EXPECT_EQ(NextExpected, H.Graphs.size());

  // The mapping survives the interleaved release() calls: pages fault
  // straight back in from the file.
  EXPECT_TRUE(Img.verify(&Error)) << Error;
  Img.release();
  EXPECT_EQ(Img.functionName(0), H.Names[0]);
  std::remove(Path.c_str());
}

TEST(StreamAnalysis, HonorsComputeControlRegionsOff) {
  CorpusHandles H(/*Seed=*/1994);
  BatchOptions BO;
  BO.ComputeControlRegions = false;
  BatchAnalyzer A(BO);
  std::vector<uint8_t> Bytes = buildCorpusImage(H.Graphs, H.Names);
  CorpusImage Img = CorpusImage::fromBytes(Bytes);
  ASSERT_TRUE(Img.valid());
  uint64_t Seen = 0;
  A.analyzeCorpusStream(
      Img,
      [&](uint64_t, const FunctionAnalysis &FA) {
        ++Seen;
        EXPECT_EQ(FA.ControlRegions.NumClasses, 0u);
        EXPECT_TRUE(FA.ControlRegions.NodeClass.empty());
      },
      /*WindowFunctions=*/64);
  EXPECT_EQ(Seen, H.Graphs.size());
}

//===----------------------------------------------------------------------===//
// verifyImageFile
//===----------------------------------------------------------------------===//

/// Stream-builds a small generated image at \p Path.
void buildSmallImageFile(const std::string &Path) {
  StreamCorpusOptions Opts;
  Opts.Count = 32;
  ChunkProducer Produce = [&Opts](uint64_t Begin, uint64_t Count,
                                  std::vector<Cfg> &Graphs,
                                  std::vector<std::string> &Names) {
    Graphs.resize(Count);
    Names.resize(Count);
    for (uint64_t K = 0; K < Count; ++K)
      generateStreamFunction(Opts, Begin + K, Graphs[K], Names[K]);
  };
  BatchAnalyzer A;
  std::string Error;
  ASSERT_TRUE(A.buildImageStream(Opts.Count, Produce, 8, Path, &Error))
      << Error;
}

TEST(VerifyImageFile, AcceptsAFreshStreamBuild) {
  std::string Path = ::testing::TempDir() + "verify_good.img";
  buildSmallImageFile(Path);
  std::string Error;
  EXPECT_TRUE(verifyImageFile(Path, &Error)) << Error;
  // And the verified file maps and verifies through the mmap path too.
  CorpusImage Img = CorpusImage::map(Path, &Error);
  ASSERT_TRUE(Img.valid()) << Error;
  EXPECT_TRUE(Img.verify(&Error)) << Error;
  std::remove(Path.c_str());
}

TEST(VerifyImageFile, RejectsPayloadCorruption) {
  std::string Path = ::testing::TempDir() + "verify_corrupt.img";
  buildSmallImageFile(Path);
  std::vector<uint8_t> Bytes = readFileBytes(Path);
  ASSERT_GT(Bytes.size(), 1024u);
  // Flip one byte deep in the payload (past header + section table).
  Bytes[Bytes.size() / 2] ^= 0x5a;
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  OS.write(reinterpret_cast<const char *>(Bytes.data()), Bytes.size());
  OS.close();
  std::string Error;
  EXPECT_FALSE(verifyImageFile(Path, &Error));
  EXPECT_NE(Error.find("checksum"), std::string::npos) << Error;
  std::remove(Path.c_str());
}

TEST(VerifyImageFile, RejectsTruncation) {
  std::string Path = ::testing::TempDir() + "verify_trunc.img";
  buildSmallImageFile(Path);
  std::vector<uint8_t> Bytes = readFileBytes(Path);
  Bytes.resize(Bytes.size() - 64);
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  OS.write(reinterpret_cast<const char *>(Bytes.data()), Bytes.size());
  OS.close();
  std::string Error;
  EXPECT_FALSE(verifyImageFile(Path, &Error));
  EXPECT_FALSE(Error.empty());
  std::remove(Path.c_str());
}

TEST(VerifyImageFile, RejectsMissingFile) {
  std::string Error;
  EXPECT_FALSE(verifyImageFile(
      ::testing::TempDir() + "no_such_image.img", &Error));
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// StreamImageWriter contract checks
//===----------------------------------------------------------------------===//

TEST(StreamImageWriter, RefusesFillBeforeAllShapes) {
  std::string Path = ::testing::TempDir() + "writer_contract.img";
  StreamImageWriter W(Path, /*NumFunctions=*/4);
  ASSERT_TRUE(W.valid());
  Cfg G;
  std::string Name;
  StreamCorpusOptions Opts;
  generateStreamFunction(Opts, 0, G, Name);
  ProgramStructureTree T = ProgramStructureTree::build(G);
  W.addShape(G, T, Name);
  std::string Error;
  EXPECT_FALSE(W.beginFill(&Error)); // Only 1 of 4 shapes recorded.
  EXPECT_FALSE(Error.empty());
  std::remove(Path.c_str());
}

} // namespace
