//===- SsaTest.cpp - SSA construction tests ------------------------------------===//
//
// Part of the PST library test suite: golden phi placements, Theorem-9
// equivalence of classic and PST-based placement (on hand-written code,
// generated programs and the full corpus style), and SSA verification
// after renaming.
//
//===----------------------------------------------------------------------===//

#include "pst/ssa/SsaBuilder.h"

#include "pst/core/ProgramStructureTree.h"
#include "pst/graph/CfgAlgorithms.h"
#include "pst/workload/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace pst;

namespace {

LoweredFunction compileOne(const std::string &Src) {
  std::vector<Diagnostic> Diags;
  auto Fns = compile(Src, &Diags);
  EXPECT_TRUE(Fns.has_value())
      << (Diags.empty() ? "no diagnostics" : Diags[0].str());
  return std::move((*Fns)[0]);
}

/// Index of variable \p Name.
VarId varOf(const LoweredFunction &F, const std::string &Name) {
  for (VarId V = 0; V < F.numVars(); ++V)
    if (F.VarNames[V] == Name)
      return V;
  ADD_FAILURE() << "no variable " << Name;
  return InvalidVar;
}

void expectPlacementsEqual(const LoweredFunction &F) {
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  PhiPlacement Classic = placePhisClassic(F);
  PhiPlacement Pst = placePhisPst(F, T);
  ASSERT_EQ(Classic.PhiBlocks.size(), Pst.PhiBlocks.size());
  for (VarId V = 0; V < F.numVars(); ++V)
    EXPECT_EQ(Classic.PhiBlocks[V], Pst.PhiBlocks[V])
        << F.Name << " variable " << F.VarNames[V];
}

} // namespace

TEST(PhiPlacement, StraightLineNeedsNoPhis) {
  LoweredFunction F =
      compileOne("func f(a) { var x = a; x = x + 1; return x; }");
  PhiPlacement P = placePhisClassic(F);
  for (VarId V = 0; V < F.numVars(); ++V)
    EXPECT_TRUE(P.PhiBlocks[V].empty());
}

TEST(PhiPlacement, DiamondJoinGetsPhi) {
  LoweredFunction F = compileOne(
      "func f(a) { var x = 0; if (a > 0) { x = 1; } else { x = 2; } "
      "return x; }");
  PhiPlacement P = placePhisClassic(F);
  VarId X = varOf(F, "x");
  ASSERT_EQ(P.PhiBlocks[X].size(), 1u);
  // The phi block is the join: both arms are its predecessors.
  NodeId Join = P.PhiBlocks[X][0];
  EXPECT_EQ(F.Graph.predEdges(Join).size(), 2u);
  // 'a' is only defined at entry: no phi.
  EXPECT_TRUE(P.PhiBlocks[varOf(F, "a")].empty());
}

TEST(PhiPlacement, LoopHeaderGetsPhi) {
  LoweredFunction F = compileOne(
      "func f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }");
  PhiPlacement P = placePhisClassic(F);
  VarId I = varOf(F, "i");
  ASSERT_FALSE(P.PhiBlocks[I].empty());
  // The loop header is a phi block (merge of entry path and backedge).
  bool HeaderFound = false;
  for (NodeId B : P.PhiBlocks[I])
    HeaderFound |= F.Graph.predEdges(B).size() >= 2;
  EXPECT_TRUE(HeaderFound);
}

TEST(PhiPlacement, PstMatchesClassicOnGoldens) {
  const char *Sources[] = {
      "func f(a) { var x = a; return x; }",
      "func f(a) { var x = 0; if (a > 0) { x = 1; } return x; }",
      "func f(a) { var x = 0; if (a > 0) { x = 1; } else { x = 2; } "
      "return x; }",
      "func f(n) { var i = 0; var s = 0; while (i < n) { s = s + i; "
      "i = i + 1; } return s; }",
      "func f(n) { var i = 0; do { i = i + 1; } while (i < n); return i; }",
      "func f(n) { var s = 0; var i = 0; for (i = 0; i < n; i = i + 1) { "
      "if (s > 10) { break; } s = s + i; } return s; }",
      "func f(a) { var x = 0; switch (a) { case 0: x = 1; case 1: x = 2; "
      "default: x = 3; } return x; }",
      // Nested loops with defs at several depths.
      "func f(n) { var i = 0; var j = 0; var s = 0; while (i < n) { "
      "j = 0; while (j < i) { s = s + j; j = j + 1; } i = i + 1; } "
      "return s; }",
      // Goto-made irreducible flow.
      "func f(a) { var x = 0; if (a > 0) { goto mid; } while (x < 10) { "
      "x = x + 1; mid: x = x + 2; } return x; }",
  };
  for (const char *Src : Sources)
    expectPlacementsEqual(compileOne(Src));
}

TEST(PhiPlacement, PstExaminesFewerRegionsForLocalVars) {
  // s is only assigned inside the inner loop; the PST placement must not
  // examine every region for it.
  LoweredFunction F = compileOne(R"(
    func f(n) {
      var a = 0;
      var b = 0;
      var c = 0;
      if (n > 0) { a = 1; } else { a = 2; }
      if (n > 1) { b = 1; } else { b = 2; }
      if (n > 2) { c = 1; } else { c = 2; }
      var s = 0;
      while (s < n) { s = s + 1; }
      return a + b + c + s;
    }
  )");
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  PhiPlacement P = placePhisPst(F, T);
  VarId S = varOf(F, "s");
  EXPECT_LT(P.RegionsExamined[S], P.RegionsTotal);
  EXPECT_GT(P.RegionsTotal, 5u);
}

class PhiPlacementRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PhiPlacementRandomTest, Theorem9HoldsOnGeneratedPrograms) {
  Rng R(GetParam() * 577 + 19);
  ProgramGenOptions Opts;
  Opts.TargetStatements = 15 + static_cast<uint32_t>(R.nextBelow(150));
  Opts.GotoProb = GetParam() % 4 == 0 ? 0.08 : 0.0;
  Function F = generateFunction(R, Opts, "gen");
  auto L = lowerFunction(F);
  ASSERT_TRUE(L.has_value());
  ASSERT_TRUE(validateCfg(L->Graph));
  expectPlacementsEqual(*L);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhiPlacementRandomTest,
                         ::testing::Range<uint64_t>(0, 80));

TEST(SsaBuilder, StraightLineVersions) {
  LoweredFunction F =
      compileOne("func f(a) { var x = a; x = x + a; return x; }");
  SsaForm S = buildSsa(F, placePhisClassic(F));
  std::string Why;
  EXPECT_TRUE(verifySsa(F, S, &Why)) << Why;
  VarId X = varOf(F, "x");
  EXPECT_EQ(S.NumVersions[X], 3u); // undef + two defs.
  EXPECT_EQ(S.numPhis(), 0u);
}

TEST(SsaBuilder, DiamondPhiOperands) {
  LoweredFunction F = compileOne(
      "func f(a) { var x = 0; if (a > 0) { x = 1; } else { x = 2; } "
      "return x; }");
  SsaForm S = buildSsa(F, placePhisClassic(F));
  std::string Why;
  ASSERT_TRUE(verifySsa(F, S, &Why)) << Why;
  EXPECT_EQ(S.numPhis(), 1u);
  // The phi merges two distinct non-undef versions.
  for (NodeId B = 0; B < F.Graph.numNodes(); ++B)
    for (const SsaPhi &Phi : S.Phis[B]) {
      ASSERT_EQ(Phi.Incoming.size(), 2u);
      EXPECT_NE(Phi.Incoming[0].second, Phi.Incoming[1].second);
      EXPECT_NE(Phi.Incoming[0].second, 0u);
      EXPECT_NE(Phi.Incoming[1].second, 0u);
    }
}

TEST(SsaBuilder, LoopPhiUsesBackedgeVersion) {
  LoweredFunction F = compileOne(
      "func f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }");
  SsaForm S = buildSsa(F, placePhisClassic(F));
  std::string Why;
  ASSERT_TRUE(verifySsa(F, S, &Why)) << Why;
  EXPECT_GE(S.numPhis(), 1u);
}

TEST(SsaBuilder, PstPlacementProducesVerifiableSsa) {
  LoweredFunction F = compileOne(R"(
    func f(n) {
      var i = 0;
      var s = 0;
      while (i < n) {
        if (s % 2 == 0) { s = s + i; } else { s = s - 1; }
        i = i + 1;
      }
      return s;
    }
  )");
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  SsaForm S = buildSsa(F, placePhisPst(F, T));
  std::string Why;
  EXPECT_TRUE(verifySsa(F, S, &Why)) << Why;
}

TEST(SsaBuilder, FormatShowsPhis) {
  LoweredFunction F = compileOne(
      "func f(a) { var x = 0; if (a > 0) { x = 1; } return x; }");
  SsaForm S = buildSsa(F, placePhisClassic(F));
  std::string Text = formatSsa(F, S);
  EXPECT_NE(Text.find("phi("), std::string::npos);
  EXPECT_NE(Text.find("x."), std::string::npos);
}

class SsaRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SsaRandomTest, RenamingVerifiesOnGeneratedPrograms) {
  Rng R(GetParam() * 701 + 23);
  ProgramGenOptions Opts;
  Opts.TargetStatements = 20 + static_cast<uint32_t>(R.nextBelow(120));
  Opts.GotoProb = GetParam() % 3 == 0 ? 0.06 : 0.0;
  Function Fn = generateFunction(R, Opts, "gen");
  auto L = lowerFunction(Fn);
  ASSERT_TRUE(L.has_value());

  ProgramStructureTree T = ProgramStructureTree::build(L->Graph);
  for (bool UsePst : {false, true}) {
    SsaForm S =
        buildSsa(*L, UsePst ? placePhisPst(*L, T) : placePhisClassic(*L));
    std::string Why;
    ASSERT_TRUE(verifySsa(*L, S, &Why))
        << "seed " << GetParam() << (UsePst ? " pst: " : " classic: ")
        << Why;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsaRandomTest,
                         ::testing::Range<uint64_t>(0, 60));
