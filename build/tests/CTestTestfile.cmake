# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_dom[1]_include.cmake")
include("/root/repo/build/tests/test_cycleequiv[1]_include.cmake")
include("/root/repo/build/tests/test_pst[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_loops[1]_include.cmake")
include("/root/repo/build/tests/test_cdg[1]_include.cmake")
include("/root/repo/build/tests/test_lang[1]_include.cmake")
include("/root/repo/build/tests/test_ssa[1]_include.cmake")
include("/root/repo/build/tests/test_dataflow[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
