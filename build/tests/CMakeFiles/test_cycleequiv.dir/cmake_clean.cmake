file(REMOVE_RECURSE
  "CMakeFiles/test_cycleequiv.dir/CycleEquivTest.cpp.o"
  "CMakeFiles/test_cycleequiv.dir/CycleEquivTest.cpp.o.d"
  "test_cycleequiv"
  "test_cycleequiv.pdb"
  "test_cycleequiv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cycleequiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
