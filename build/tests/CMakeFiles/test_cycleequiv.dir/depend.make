# Empty dependencies file for test_cycleequiv.
# This may be replaced when dependencies are built.
