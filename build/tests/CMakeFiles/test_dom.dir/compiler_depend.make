# Empty compiler generated dependencies file for test_dom.
# This may be replaced when dependencies are built.
