
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/test_support.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/SupportTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/pst_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cycleequiv/CMakeFiles/pst_cycleequiv.dir/DependInfo.cmake"
  "/root/repo/build/src/dom/CMakeFiles/pst_dom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pst_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pst_support.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/pst_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
