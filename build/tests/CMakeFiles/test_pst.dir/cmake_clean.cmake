file(REMOVE_RECURSE
  "CMakeFiles/test_pst.dir/PstTest.cpp.o"
  "CMakeFiles/test_pst.dir/PstTest.cpp.o.d"
  "test_pst"
  "test_pst.pdb"
  "test_pst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
