# Empty dependencies file for test_pst.
# This may be replaced when dependencies are built.
