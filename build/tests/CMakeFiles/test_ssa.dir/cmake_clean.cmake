file(REMOVE_RECURSE
  "CMakeFiles/test_ssa.dir/SsaTest.cpp.o"
  "CMakeFiles/test_ssa.dir/SsaTest.cpp.o.d"
  "test_ssa"
  "test_ssa.pdb"
  "test_ssa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
