file(REMOVE_RECURSE
  "CMakeFiles/sparse_dataflow.dir/sparse_dataflow.cpp.o"
  "CMakeFiles/sparse_dataflow.dir/sparse_dataflow.cpp.o.d"
  "sparse_dataflow"
  "sparse_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
