# Empty dependencies file for ssa_pipeline.
# This may be replaced when dependencies are built.
