file(REMOVE_RECURSE
  "CMakeFiles/ssa_pipeline.dir/ssa_pipeline.cpp.o"
  "CMakeFiles/ssa_pipeline.dir/ssa_pipeline.cpp.o.d"
  "ssa_pipeline"
  "ssa_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssa_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
