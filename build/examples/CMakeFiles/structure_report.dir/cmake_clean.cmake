file(REMOVE_RECURSE
  "CMakeFiles/structure_report.dir/structure_report.cpp.o"
  "CMakeFiles/structure_report.dir/structure_report.cpp.o.d"
  "structure_report"
  "structure_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structure_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
