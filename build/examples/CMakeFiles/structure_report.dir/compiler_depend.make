# Empty compiler generated dependencies file for structure_report.
# This may be replaced when dependencies are built.
