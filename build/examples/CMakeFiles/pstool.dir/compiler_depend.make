# Empty compiler generated dependencies file for pstool.
# This may be replaced when dependencies are built.
