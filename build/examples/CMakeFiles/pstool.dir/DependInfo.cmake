
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/pstool.cpp" "examples/CMakeFiles/pstool.dir/pstool.cpp.o" "gcc" "examples/CMakeFiles/pstool.dir/pstool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/pst_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/pst_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/ssa/CMakeFiles/pst_ssa.dir/DependInfo.cmake"
  "/root/repo/build/src/cdg/CMakeFiles/pst_cdg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/pst_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cycleequiv/CMakeFiles/pst_cycleequiv.dir/DependInfo.cmake"
  "/root/repo/build/src/dom/CMakeFiles/pst_dom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pst_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
