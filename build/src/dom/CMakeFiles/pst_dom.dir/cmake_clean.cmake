file(REMOVE_RECURSE
  "CMakeFiles/pst_dom.dir/Dominators.cpp.o"
  "CMakeFiles/pst_dom.dir/Dominators.cpp.o.d"
  "CMakeFiles/pst_dom.dir/LoopInfo.cpp.o"
  "CMakeFiles/pst_dom.dir/LoopInfo.cpp.o.d"
  "libpst_dom.a"
  "libpst_dom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pst_dom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
