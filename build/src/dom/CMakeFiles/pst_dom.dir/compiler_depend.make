# Empty compiler generated dependencies file for pst_dom.
# This may be replaced when dependencies are built.
