
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dom/Dominators.cpp" "src/dom/CMakeFiles/pst_dom.dir/Dominators.cpp.o" "gcc" "src/dom/CMakeFiles/pst_dom.dir/Dominators.cpp.o.d"
  "/root/repo/src/dom/LoopInfo.cpp" "src/dom/CMakeFiles/pst_dom.dir/LoopInfo.cpp.o" "gcc" "src/dom/CMakeFiles/pst_dom.dir/LoopInfo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/pst_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
