file(REMOVE_RECURSE
  "libpst_dom.a"
)
