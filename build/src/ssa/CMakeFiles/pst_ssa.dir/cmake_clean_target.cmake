file(REMOVE_RECURSE
  "libpst_ssa.a"
)
