file(REMOVE_RECURSE
  "CMakeFiles/pst_ssa.dir/PhiPlacement.cpp.o"
  "CMakeFiles/pst_ssa.dir/PhiPlacement.cpp.o.d"
  "CMakeFiles/pst_ssa.dir/SsaBuilder.cpp.o"
  "CMakeFiles/pst_ssa.dir/SsaBuilder.cpp.o.d"
  "libpst_ssa.a"
  "libpst_ssa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pst_ssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
