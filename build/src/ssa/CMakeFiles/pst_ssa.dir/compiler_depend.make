# Empty compiler generated dependencies file for pst_ssa.
# This may be replaced when dependencies are built.
