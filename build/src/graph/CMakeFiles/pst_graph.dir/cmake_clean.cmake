file(REMOVE_RECURSE
  "CMakeFiles/pst_graph.dir/CfgAlgorithms.cpp.o"
  "CMakeFiles/pst_graph.dir/CfgAlgorithms.cpp.o.d"
  "CMakeFiles/pst_graph.dir/CfgIO.cpp.o"
  "CMakeFiles/pst_graph.dir/CfgIO.cpp.o.d"
  "CMakeFiles/pst_graph.dir/Intervals.cpp.o"
  "CMakeFiles/pst_graph.dir/Intervals.cpp.o.d"
  "libpst_graph.a"
  "libpst_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pst_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
