# Empty dependencies file for pst_graph.
# This may be replaced when dependencies are built.
