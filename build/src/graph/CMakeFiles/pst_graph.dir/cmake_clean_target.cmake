file(REMOVE_RECURSE
  "libpst_graph.a"
)
