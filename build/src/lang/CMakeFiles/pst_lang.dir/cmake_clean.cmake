file(REMOVE_RECURSE
  "CMakeFiles/pst_lang.dir/Ast.cpp.o"
  "CMakeFiles/pst_lang.dir/Ast.cpp.o.d"
  "CMakeFiles/pst_lang.dir/Interp.cpp.o"
  "CMakeFiles/pst_lang.dir/Interp.cpp.o.d"
  "CMakeFiles/pst_lang.dir/Lexer.cpp.o"
  "CMakeFiles/pst_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/pst_lang.dir/Lower.cpp.o"
  "CMakeFiles/pst_lang.dir/Lower.cpp.o.d"
  "CMakeFiles/pst_lang.dir/Parser.cpp.o"
  "CMakeFiles/pst_lang.dir/Parser.cpp.o.d"
  "libpst_lang.a"
  "libpst_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pst_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
