# Empty dependencies file for pst_lang.
# This may be replaced when dependencies are built.
