file(REMOVE_RECURSE
  "libpst_lang.a"
)
