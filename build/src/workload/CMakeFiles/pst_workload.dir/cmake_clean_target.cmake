file(REMOVE_RECURSE
  "libpst_workload.a"
)
