# Empty dependencies file for pst_workload.
# This may be replaced when dependencies are built.
