
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/CfgGenerators.cpp" "src/workload/CMakeFiles/pst_workload.dir/CfgGenerators.cpp.o" "gcc" "src/workload/CMakeFiles/pst_workload.dir/CfgGenerators.cpp.o.d"
  "/root/repo/src/workload/Corpus.cpp" "src/workload/CMakeFiles/pst_workload.dir/Corpus.cpp.o" "gcc" "src/workload/CMakeFiles/pst_workload.dir/Corpus.cpp.o.d"
  "/root/repo/src/workload/ProgramGenerator.cpp" "src/workload/CMakeFiles/pst_workload.dir/ProgramGenerator.cpp.o" "gcc" "src/workload/CMakeFiles/pst_workload.dir/ProgramGenerator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/pst_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/pst_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
