file(REMOVE_RECURSE
  "CMakeFiles/pst_workload.dir/CfgGenerators.cpp.o"
  "CMakeFiles/pst_workload.dir/CfgGenerators.cpp.o.d"
  "CMakeFiles/pst_workload.dir/Corpus.cpp.o"
  "CMakeFiles/pst_workload.dir/Corpus.cpp.o.d"
  "CMakeFiles/pst_workload.dir/ProgramGenerator.cpp.o"
  "CMakeFiles/pst_workload.dir/ProgramGenerator.cpp.o.d"
  "libpst_workload.a"
  "libpst_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pst_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
