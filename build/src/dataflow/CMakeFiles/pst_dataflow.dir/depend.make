# Empty dependencies file for pst_dataflow.
# This may be replaced when dependencies are built.
