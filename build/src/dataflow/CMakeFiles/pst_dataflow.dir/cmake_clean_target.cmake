file(REMOVE_RECURSE
  "libpst_dataflow.a"
)
