file(REMOVE_RECURSE
  "CMakeFiles/pst_dataflow.dir/Dataflow.cpp.o"
  "CMakeFiles/pst_dataflow.dir/Dataflow.cpp.o.d"
  "CMakeFiles/pst_dataflow.dir/Problems.cpp.o"
  "CMakeFiles/pst_dataflow.dir/Problems.cpp.o.d"
  "CMakeFiles/pst_dataflow.dir/Qpg.cpp.o"
  "CMakeFiles/pst_dataflow.dir/Qpg.cpp.o.d"
  "CMakeFiles/pst_dataflow.dir/Seg.cpp.o"
  "CMakeFiles/pst_dataflow.dir/Seg.cpp.o.d"
  "libpst_dataflow.a"
  "libpst_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pst_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
