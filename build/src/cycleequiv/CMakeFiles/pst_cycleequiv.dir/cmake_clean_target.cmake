file(REMOVE_RECURSE
  "libpst_cycleequiv.a"
)
