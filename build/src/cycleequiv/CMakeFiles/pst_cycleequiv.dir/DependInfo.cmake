
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cycleequiv/CycleEquiv.cpp" "src/cycleequiv/CMakeFiles/pst_cycleequiv.dir/CycleEquiv.cpp.o" "gcc" "src/cycleequiv/CMakeFiles/pst_cycleequiv.dir/CycleEquiv.cpp.o.d"
  "/root/repo/src/cycleequiv/CycleEquivBrute.cpp" "src/cycleequiv/CMakeFiles/pst_cycleequiv.dir/CycleEquivBrute.cpp.o" "gcc" "src/cycleequiv/CMakeFiles/pst_cycleequiv.dir/CycleEquivBrute.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/pst_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
