# Empty compiler generated dependencies file for pst_cycleequiv.
# This may be replaced when dependencies are built.
