file(REMOVE_RECURSE
  "CMakeFiles/pst_cycleequiv.dir/CycleEquiv.cpp.o"
  "CMakeFiles/pst_cycleequiv.dir/CycleEquiv.cpp.o.d"
  "CMakeFiles/pst_cycleequiv.dir/CycleEquivBrute.cpp.o"
  "CMakeFiles/pst_cycleequiv.dir/CycleEquivBrute.cpp.o.d"
  "libpst_cycleequiv.a"
  "libpst_cycleequiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pst_cycleequiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
