file(REMOVE_RECURSE
  "libpst_core.a"
)
