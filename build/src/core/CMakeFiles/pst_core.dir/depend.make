# Empty dependencies file for pst_core.
# This may be replaced when dependencies are built.
