file(REMOVE_RECURSE
  "CMakeFiles/pst_core.dir/ProgramStructureTree.cpp.o"
  "CMakeFiles/pst_core.dir/ProgramStructureTree.cpp.o.d"
  "CMakeFiles/pst_core.dir/PstDominators.cpp.o"
  "CMakeFiles/pst_core.dir/PstDominators.cpp.o.d"
  "CMakeFiles/pst_core.dir/RegionAnalysis.cpp.o"
  "CMakeFiles/pst_core.dir/RegionAnalysis.cpp.o.d"
  "CMakeFiles/pst_core.dir/SeseOracle.cpp.o"
  "CMakeFiles/pst_core.dir/SeseOracle.cpp.o.d"
  "CMakeFiles/pst_core.dir/StructureMetrics.cpp.o"
  "CMakeFiles/pst_core.dir/StructureMetrics.cpp.o.d"
  "libpst_core.a"
  "libpst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
