file(REMOVE_RECURSE
  "libpst_cdg.a"
)
