file(REMOVE_RECURSE
  "CMakeFiles/pst_cdg.dir/ControlDependence.cpp.o"
  "CMakeFiles/pst_cdg.dir/ControlDependence.cpp.o.d"
  "CMakeFiles/pst_cdg.dir/ControlRegions.cpp.o"
  "CMakeFiles/pst_cdg.dir/ControlRegions.cpp.o.d"
  "libpst_cdg.a"
  "libpst_cdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pst_cdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
