# Empty dependencies file for pst_cdg.
# This may be replaced when dependencies are built.
