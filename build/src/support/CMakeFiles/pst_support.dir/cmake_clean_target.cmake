file(REMOVE_RECURSE
  "libpst_support.a"
)
