# Empty dependencies file for pst_support.
# This may be replaced when dependencies are built.
