file(REMOVE_RECURSE
  "CMakeFiles/pst_support.dir/TableWriter.cpp.o"
  "CMakeFiles/pst_support.dir/TableWriter.cpp.o.d"
  "libpst_support.a"
  "libpst_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pst_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
