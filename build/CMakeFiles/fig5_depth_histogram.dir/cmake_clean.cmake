file(REMOVE_RECURSE
  "CMakeFiles/fig5_depth_histogram.dir/bench/fig5_depth_histogram.cpp.o"
  "CMakeFiles/fig5_depth_histogram.dir/bench/fig5_depth_histogram.cpp.o.d"
  "bench/fig5_depth_histogram"
  "bench/fig5_depth_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_depth_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
