# Empty dependencies file for time_cycleequiv_vs_domtree.
# This may be replaced when dependencies are built.
