file(REMOVE_RECURSE
  "CMakeFiles/time_cycleequiv_vs_domtree.dir/bench/time_cycleequiv_vs_domtree.cpp.o"
  "CMakeFiles/time_cycleequiv_vs_domtree.dir/bench/time_cycleequiv_vs_domtree.cpp.o.d"
  "bench/time_cycleequiv_vs_domtree"
  "bench/time_cycleequiv_vs_domtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_cycleequiv_vs_domtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
