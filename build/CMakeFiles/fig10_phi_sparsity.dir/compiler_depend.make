# Empty compiler generated dependencies file for fig10_phi_sparsity.
# This may be replaced when dependencies are built.
