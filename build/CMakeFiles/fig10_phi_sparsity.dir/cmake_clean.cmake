file(REMOVE_RECURSE
  "CMakeFiles/fig10_phi_sparsity.dir/bench/fig10_phi_sparsity.cpp.o"
  "CMakeFiles/fig10_phi_sparsity.dir/bench/fig10_phi_sparsity.cpp.o.d"
  "bench/fig10_phi_sparsity"
  "bench/fig10_phi_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_phi_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
