# Empty dependencies file for time_dataflow.
# This may be replaced when dependencies are built.
