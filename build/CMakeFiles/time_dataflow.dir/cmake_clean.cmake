file(REMOVE_RECURSE
  "CMakeFiles/time_dataflow.dir/bench/time_dataflow.cpp.o"
  "CMakeFiles/time_dataflow.dir/bench/time_dataflow.cpp.o.d"
  "bench/time_dataflow"
  "bench/time_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
