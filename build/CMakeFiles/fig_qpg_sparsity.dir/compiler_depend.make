# Empty compiler generated dependencies file for fig_qpg_sparsity.
# This may be replaced when dependencies are built.
