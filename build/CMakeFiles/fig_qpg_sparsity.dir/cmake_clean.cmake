file(REMOVE_RECURSE
  "CMakeFiles/fig_qpg_sparsity.dir/bench/fig_qpg_sparsity.cpp.o"
  "CMakeFiles/fig_qpg_sparsity.dir/bench/fig_qpg_sparsity.cpp.o.d"
  "bench/fig_qpg_sparsity"
  "bench/fig_qpg_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_qpg_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
