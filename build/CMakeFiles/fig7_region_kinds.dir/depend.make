# Empty dependencies file for fig7_region_kinds.
# This may be replaced when dependencies are built.
