file(REMOVE_RECURSE
  "CMakeFiles/fig7_region_kinds.dir/bench/fig7_region_kinds.cpp.o"
  "CMakeFiles/fig7_region_kinds.dir/bench/fig7_region_kinds.cpp.o.d"
  "bench/fig7_region_kinds"
  "bench/fig7_region_kinds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_region_kinds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
