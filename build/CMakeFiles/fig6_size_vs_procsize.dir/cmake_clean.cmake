file(REMOVE_RECURSE
  "CMakeFiles/fig6_size_vs_procsize.dir/bench/fig6_size_vs_procsize.cpp.o"
  "CMakeFiles/fig6_size_vs_procsize.dir/bench/fig6_size_vs_procsize.cpp.o.d"
  "bench/fig6_size_vs_procsize"
  "bench/fig6_size_vs_procsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_size_vs_procsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
