# Empty dependencies file for fig6_size_vs_procsize.
# This may be replaced when dependencies are built.
