file(REMOVE_RECURSE
  "CMakeFiles/fig9_max_region_size.dir/bench/fig9_max_region_size.cpp.o"
  "CMakeFiles/fig9_max_region_size.dir/bench/fig9_max_region_size.cpp.o.d"
  "bench/fig9_max_region_size"
  "bench/fig9_max_region_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_max_region_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
