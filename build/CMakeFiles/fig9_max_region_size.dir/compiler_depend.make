# Empty compiler generated dependencies file for fig9_max_region_size.
# This may be replaced when dependencies are built.
