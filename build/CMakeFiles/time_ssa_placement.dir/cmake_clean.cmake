file(REMOVE_RECURSE
  "CMakeFiles/time_ssa_placement.dir/bench/time_ssa_placement.cpp.o"
  "CMakeFiles/time_ssa_placement.dir/bench/time_ssa_placement.cpp.o.d"
  "bench/time_ssa_placement"
  "bench/time_ssa_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_ssa_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
