# Empty dependencies file for time_ssa_placement.
# This may be replaced when dependencies are built.
