file(REMOVE_RECURSE
  "CMakeFiles/time_control_regions.dir/bench/time_control_regions.cpp.o"
  "CMakeFiles/time_control_regions.dir/bench/time_control_regions.cpp.o.d"
  "bench/time_control_regions"
  "bench/time_control_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_control_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
