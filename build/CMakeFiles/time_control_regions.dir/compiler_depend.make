# Empty compiler generated dependencies file for time_control_regions.
# This may be replaced when dependencies are built.
