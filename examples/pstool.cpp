//===- pstool.cpp - Command-line driver over the whole library ------------------===//
//
// A small analysis driver: reads either MiniLang source or a textual CFG
// (see pst/graph/CfgIO.h) and runs the requested analyses.
//
// Usage:
//   pstool [options] [input-file]
//     --cfg           input is a textual CFG instead of MiniLang
//     --pst           print the program structure tree (default)
//     --regions       print control regions
//     --dom           print the dominator tree (and verify the PST-based
//                     divide-and-conquer builder against it)
//     --loops         print the natural loop forest
//     --intervals     print the interval partition and reducibility
//     --dot           dump Graphviz of the CFG
//     --all           everything above
//     --stats         enable telemetry; print the per-stage counter/timer
//                     dump (TelemetryRegistry::toJson) after the analyses
//     --trace-out <f> enable telemetry span retention; write chrome-trace
//                     JSON to <f> (load it in chrome://tracing or Perfetto)
//     --save-image <f>  also freeze all input functions (CSR CFGs + PSTs)
//                     into a corpus image at <f> (see pst/image)
//     --load-image <f>  take input from a corpus image instead of source:
//                     checksums are verified, PSTs come straight off the
//                     mapped arrays, and the other analyses run on
//                     materialized CFGs — output matches the direct path
//                     byte for byte
//     --image-info <f>  dump a corpus image's header, section table and
//                     per-section checksum status, then exit; exits 1 if
//                     any section checksum mismatches
//     --gen-image <n>   stream-build a corpus image of <n> generated
//                     functions out of core (bounded memory; see
//                     pst/workload/CorpusStream.h) and exit. Requires
//                     --out; --gen-seed / --gen-chunk / --threads tune it
//     --out <f>       output path for --gen-image
//     --gen-seed <s>  stream corpus seed (default 0x57a3e)
//     --gen-chunk <c> functions per streamed chunk (default 4096)
//     --threads <t>   worker threads for --gen-image (0 = hardware)
//
// Without an input file, a built-in demo program is analyzed.
//
//===----------------------------------------------------------------------===//

#include "pst/cdg/ControlRegions.h"
#include "pst/core/ProgramStructureTree.h"
#include "pst/core/PstDominators.h"
#include "pst/core/RegionAnalysis.h"
#include "pst/dom/LoopInfo.h"
#include "pst/graph/CfgAlgorithms.h"
#include "pst/graph/CfgIO.h"
#include "pst/graph/Intervals.h"
#include "pst/image/CorpusImage.h"
#include "pst/lang/Lower.h"
#include "pst/obs/Telemetry.h"
#include "pst/obs/TraceWriter.h"
#include "pst/runtime/BatchAnalyzer.h"
#include "pst/workload/CorpusStream.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace pst;

namespace {

struct Options {
  bool CfgInput = false;
  bool Pst = false, Regions = false, Dom = false, Loops = false;
  bool Intervals = false, Dot = false;
  bool Stats = false;
  std::string InputFile;
  std::string TraceFile;
  std::string SaveImage, LoadImage, ImageInfo;
  uint64_t GenImage = 0;
  std::string OutFile;
  uint64_t GenSeed = 0x57a3e;
  uint64_t GenChunk = 4096;
  unsigned Threads = 0;
};

const char *DemoSource = R"(
func demo(n) {
  var i = 0;
  var sum = 0;
  while (i < n) {
    if (i % 2 == 0) { sum = sum + i; } else { sum = sum - 1; }
    i = i + 1;
  }
  return sum;
}
)";

/// \p MappedPst, when non-null, is a frozen PST from a corpus image: it is
/// used as-is (zero build) instead of rebuilding from \p G.
void analyzeCfg(const std::string &Name, const Cfg &G, const Options &Opt,
                const ProgramStructureTree *MappedPst = nullptr) {
  std::cout << "\n======== " << Name << " (" << G.numNodes() << " nodes, "
            << G.numEdges() << " edges) ========\n";

  ProgramStructureTree T =
      MappedPst ? *MappedPst : ProgramStructureTree::build(G);
  if (Opt.Pst) {
    std::cout << "\n-- program structure tree --\n"
              << formatPst(G, T);
  }
  if (Opt.Regions) {
    ControlRegionsResult CR = computeControlRegionsLinear(G);
    std::cout << "\n-- control regions (" << CR.NumClasses << ") --\n";
    for (uint32_t C = 0; C < CR.NumClasses; ++C) {
      std::cout << "  {";
      bool First = true;
      for (NodeId N = 0; N < G.numNodes(); ++N)
        if (CR.NodeClass[N] == C) {
          std::cout << (First ? "" : ", ") << G.nodeName(N);
          First = false;
        }
      std::cout << "}\n";
    }
  }
  if (Opt.Dom) {
    DomTree DT = DomTree::buildIterative(G);
    DomTree DC = buildDominatorsViaPst(G, T);
    std::cout << "\n-- dominator tree (idom per node) --\n";
    bool AllMatch = true;
    for (NodeId N = 0; N < G.numNodes(); ++N) {
      std::cout << "  idom(" << G.nodeName(N) << ") = "
                << (DT.idom(N) == InvalidNode ? std::string("<none>")
                                              : G.nodeName(DT.idom(N)))
                << "\n";
      AllMatch &= DT.idom(N) == DC.idom(N);
    }
    std::cout << "  [divide-and-conquer PST builder "
              << (AllMatch ? "matches" : "MISMATCHES") << "]\n";
  }
  if (Opt.Loops) {
    DomTree DT = DomTree::buildIterative(G);
    LoopInfo LI(G, DT);
    std::cout << "\n-- natural loops (" << LI.numLoops() << ") --\n";
    for (LoopId L = 0; L < LI.numLoops(); ++L) {
      const auto &Loop = LI.loop(L);
      std::cout << "  depth " << Loop.Depth << " header "
                << G.nodeName(Loop.Header) << ": {";
      for (size_t I = 0; I < Loop.Nodes.size(); ++I)
        std::cout << (I ? ", " : "") << G.nodeName(Loop.Nodes[I]);
      std::cout << "}\n";
    }
    if (!LI.irreducibleEdges().empty())
      std::cout << "  " << LI.irreducibleEdges().size()
                << " irreducible retreating edge(s)\n";
  }
  if (Opt.Intervals) {
    IntervalPartition P = computeIntervals(G);
    std::cout << "\n-- intervals (" << P.Intervals.size() << ") --\n";
    for (const auto &I : P.Intervals) {
      std::cout << "  I(" << G.nodeName(I.Header) << ") = {";
      for (size_t K = 0; K < I.Nodes.size(); ++K)
        std::cout << (K ? ", " : "") << G.nodeName(I.Nodes[K]);
      std::cout << "}\n";
    }
    std::cout << "  graph is "
              << (isReducibleByIntervals(G) ? "reducible" : "irreducible")
              << "\n";
  }
  if (Opt.Dot) {
    std::cout << "\n-- graphviz --\n";
    printDot(G, std::cout, Name);
  }
}

/// Handles --image-info: header, section table, per-section checksum
/// status.
int printImageInfo(const std::string &Path) {
  std::string Error;
  CorpusImage Img = CorpusImage::map(Path, &Error);
  if (!Img.valid()) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  const image::ImageHeader &H = Img.header();
  std::cout << "corpus image " << Path << "\n"
            << "  format version " << H.Version << ", " << H.FileBytes
            << " bytes, " << H.NumFunctions << " function(s), "
            << H.SectionCount << " sections\n\n"
            << "  section        offset        bytes  checksum\n";
  bool AllOk = true;
  for (uint32_t K = 0; K < Img.numSections(); ++K) {
    const image::SectionDesc &D = Img.section(K);
    bool Ok = Img.verifySection(K);
    AllOk &= Ok;
    char Line[128];
    std::snprintf(Line, sizeof(Line), "  %-12s %8llu %12llu  %s",
                  image::sectionName(image::SectionKind(K)),
                  static_cast<unsigned long long>(D.Offset),
                  static_cast<unsigned long long>(D.Bytes),
                  Ok ? "ok" : "MISMATCH");
    std::cout << Line << "\n";
  }
  if (!AllOk) {
    std::cerr << "error: corpus image " << Path
              << " has checksum mismatches\n";
    return 1;
  }
  return 0;
}

/// Handles --gen-image: stream-builds \p Opt.GenImage generated functions
/// into \p Opt.OutFile without ever materializing the corpus.
int genImage(const Options &Opt) {
  StreamCorpusOptions SO;
  SO.Seed = Opt.GenSeed;
  SO.Count = Opt.GenImage;
  BatchOptions BO;
  BO.NumThreads = Opt.Threads;
  BatchAnalyzer Analyzer(BO);
  auto Produce = [&SO](uint64_t Begin, uint64_t Count, std::vector<Cfg> &G,
                       std::vector<std::string> &N) {
    G.resize(Count);
    N.resize(Count);
    for (uint64_t I = 0; I < Count; ++I)
      generateStreamFunction(SO, Begin + I, G[I], N[I]);
  };
  std::string Error;
  if (!Analyzer.buildImageStream(SO.Count, Produce, size_t(Opt.GenChunk),
                                 Opt.OutFile, &Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  if (!verifyImageFile(Opt.OutFile, &Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  std::cout << "wrote corpus image " << Opt.OutFile << " (" << SO.Count
            << " function(s), seed 0x" << std::hex << SO.Seed << std::dec
            << ", chunk " << Opt.GenChunk << ", " << Analyzer.numWorkers()
            << " worker(s))\n";
  return 0;
}

/// Handles --save-image: freezes \p Fns (with \p Names) into one image.
int saveImage(const std::string &Path, std::span<const Cfg *const> Fns,
              std::span<const std::string> Names) {
  std::vector<uint8_t> Bytes = buildCorpusImage(Fns, Names);
  std::string Error;
  if (!writeImageFile(Path, Bytes, &Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  std::cout << "\nwrote corpus image " << Path << " (" << Fns.size()
            << " function(s), " << Bytes.size() << " bytes)\n";
  return 0;
}

/// Emits the requested telemetry reports after all analyses ran.
int finishTelemetry(const Options &Opt) {
  if (Opt.Stats) {
    std::cout << "\n-- telemetry --\n"
              << TelemetryRegistry::global().toJson();
  }
  if (!Opt.TraceFile.empty()) {
    TraceWriter Writer;
    if (!Writer.writeFile(Opt.TraceFile)) {
      std::cerr << "error: cannot write trace to '" << Opt.TraceFile
                << "'\n";
      return 1;
    }
    std::cout << "\nwrote " << Writer.snapshot().Spans.size()
              << " trace spans to " << Opt.TraceFile
              << " (open in chrome://tracing or https://ui.perfetto.dev)\n";
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--cfg")
      Opt.CfgInput = true;
    else if (A == "--pst")
      Opt.Pst = true;
    else if (A == "--regions")
      Opt.Regions = true;
    else if (A == "--dom")
      Opt.Dom = true;
    else if (A == "--loops")
      Opt.Loops = true;
    else if (A == "--intervals")
      Opt.Intervals = true;
    else if (A == "--dot")
      Opt.Dot = true;
    else if (A == "--stats")
      Opt.Stats = true;
    else if (A == "--trace-out") {
      if (I + 1 >= Argc) {
        std::cerr << "error: --trace-out needs a file argument\n";
        return 1;
      }
      Opt.TraceFile = Argv[++I];
    }
    else if (A == "--save-image" || A == "--load-image" ||
             A == "--image-info") {
      if (I + 1 >= Argc) {
        std::cerr << "error: " << A << " needs a file argument\n";
        return 1;
      }
      std::string F = Argv[++I];
      if (A == "--save-image")
        Opt.SaveImage = F;
      else if (A == "--load-image")
        Opt.LoadImage = F;
      else
        Opt.ImageInfo = F;
    }
    else if (A == "--gen-image" || A == "--out" || A == "--gen-seed" ||
             A == "--gen-chunk" || A == "--threads") {
      if (I + 1 >= Argc) {
        std::cerr << "error: " << A << " needs an argument\n";
        return 1;
      }
      std::string V = Argv[++I];
      if (A == "--out")
        Opt.OutFile = V;
      else {
        char *End = nullptr;
        uint64_t N = std::strtoull(V.c_str(), &End, 0);
        if (!End || *End != '\0') {
          std::cerr << "error: " << A << " needs a number, got '" << V
                    << "'\n";
          return 1;
        }
        if (A == "--gen-image")
          Opt.GenImage = N;
        else if (A == "--gen-seed")
          Opt.GenSeed = N;
        else if (A == "--gen-chunk")
          Opt.GenChunk = N ? N : 1;
        else
          Opt.Threads = unsigned(N);
      }
    }
    else if (A == "--all")
      Opt.Pst = Opt.Regions = Opt.Dom = Opt.Loops = Opt.Intervals = true;
    else if (!A.empty() && A[0] == '-') {
      std::cerr << "error: unknown option '" << A << "'\n";
      return 1;
    } else {
      Opt.InputFile = A;
    }
  }
  if (!Opt.Pst && !Opt.Regions && !Opt.Dom && !Opt.Loops &&
      !Opt.Intervals && !Opt.Dot) {
    Opt.Pst = true;
    // When profiling, cover the whole front half of the pipeline by
    // default so the trace shows cycleequiv -> PST -> control regions.
    if (Opt.Stats || !Opt.TraceFile.empty())
      Opt.Regions = true;
  }

  if (Opt.Stats || !Opt.TraceFile.empty()) {
    Telemetry::setEnabled(true);
    if (!Opt.TraceFile.empty())
      Telemetry::setTraceEnabled(true);
  }

  if (!Opt.ImageInfo.empty())
    return printImageInfo(Opt.ImageInfo);

  if (Opt.GenImage) {
    if (Opt.OutFile.empty()) {
      std::cerr << "error: --gen-image needs --out <file>\n";
      return 1;
    }
    if (int Rc = genImage(Opt))
      return Rc;
    return finishTelemetry(Opt);
  }

  if (!Opt.LoadImage.empty()) {
    std::string Error;
    CorpusImage Img = CorpusImage::map(Opt.LoadImage, &Error);
    if (!Img.valid()) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
    if (!Img.verify(&Error)) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
    for (uint64_t I = 0; I < Img.numFunctions(); ++I) {
      Cfg G = Img.materializeCfg(I);
      ProgramStructureTree T = Img.pst(I);
      analyzeCfg(std::string(Img.functionName(I)), G, Opt, &T);
    }
    return finishTelemetry(Opt);
  }

  std::string Input;
  if (Opt.InputFile.empty()) {
    Input = DemoSource;
    std::cout << "(no input file; analyzing the built-in demo)\n";
  } else {
    std::ifstream In(Opt.InputFile);
    if (!In) {
      std::cerr << "error: cannot open '" << Opt.InputFile << "'\n";
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Input = SS.str();
  }

  if (Opt.CfgInput) {
    std::string Error;
    auto G = parseCfgText(Input, &Error);
    if (!G) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
    std::string Why;
    if (!validateCfg(*G, &Why)) {
      std::cerr << "error: invalid CFG: " << Why << "\n";
      return 1;
    }
    analyzeCfg("cfg", *G, Opt);
    if (!Opt.SaveImage.empty()) {
      const Cfg *Fn = &*G;
      std::string Name = "cfg";
      if (int Rc = saveImage(Opt.SaveImage, {&Fn, 1}, {&Name, 1}))
        return Rc;
    }
    return finishTelemetry(Opt);
  }

  std::vector<Diagnostic> Diags;
  auto Fns = compile(Input, &Diags);
  if (!Fns) {
    for (const Diagnostic &D : Diags)
      std::cerr << D.str() << "\n";
    return 1;
  }
  for (const LoweredFunction &F : *Fns)
    analyzeCfg(F.Name, F.Graph, Opt);
  if (!Opt.SaveImage.empty()) {
    std::vector<const Cfg *> Graphs;
    std::vector<std::string> Names;
    for (const LoweredFunction &F : *Fns) {
      Graphs.push_back(&F.Graph);
      Names.push_back(F.Name);
    }
    if (int Rc = saveImage(Opt.SaveImage, Graphs, Names))
      return Rc;
  }
  return finishTelemetry(Opt);
}
