//===- pstool.cpp - Command-line driver over the whole library ------------------===//
//
// A small analysis driver: reads either MiniLang source or a textual CFG
// (see pst/graph/CfgIO.h) and runs the requested analyses.
//
// Usage:
//   pstool [options] [input-file]
//     --cfg           input is a textual CFG instead of MiniLang
//     --pst           print the program structure tree (default)
//     --regions       print control regions
//     --dom           print the dominator tree (and verify the PST-based
//                     divide-and-conquer builder against it)
//     --loops         print the natural loop forest
//     --intervals     print the interval partition and reducibility
//     --dot           dump Graphviz of the CFG
//     --all           everything above
//     --stats         enable telemetry; print the per-stage counter/timer
//                     dump (TelemetryRegistry::toJson) after the analyses
//     --trace-out <f> enable telemetry span retention; write chrome-trace
//                     JSON to <f> (load it in chrome://tracing or Perfetto)
//
// Without an input file, a built-in demo program is analyzed.
//
//===----------------------------------------------------------------------===//

#include "pst/cdg/ControlRegions.h"
#include "pst/core/ProgramStructureTree.h"
#include "pst/core/PstDominators.h"
#include "pst/core/RegionAnalysis.h"
#include "pst/dom/LoopInfo.h"
#include "pst/graph/CfgAlgorithms.h"
#include "pst/graph/CfgIO.h"
#include "pst/graph/Intervals.h"
#include "pst/lang/Lower.h"
#include "pst/obs/Telemetry.h"
#include "pst/obs/TraceWriter.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace pst;

namespace {

struct Options {
  bool CfgInput = false;
  bool Pst = false, Regions = false, Dom = false, Loops = false;
  bool Intervals = false, Dot = false;
  bool Stats = false;
  std::string InputFile;
  std::string TraceFile;
};

const char *DemoSource = R"(
func demo(n) {
  var i = 0;
  var sum = 0;
  while (i < n) {
    if (i % 2 == 0) { sum = sum + i; } else { sum = sum - 1; }
    i = i + 1;
  }
  return sum;
}
)";

void analyzeCfg(const std::string &Name, const Cfg &G, const Options &Opt) {
  std::cout << "\n======== " << Name << " (" << G.numNodes() << " nodes, "
            << G.numEdges() << " edges) ========\n";

  ProgramStructureTree T = ProgramStructureTree::build(G);
  if (Opt.Pst) {
    std::cout << "\n-- program structure tree --\n"
              << formatPst(G, T);
  }
  if (Opt.Regions) {
    ControlRegionsResult CR = computeControlRegionsLinear(G);
    std::cout << "\n-- control regions (" << CR.NumClasses << ") --\n";
    for (uint32_t C = 0; C < CR.NumClasses; ++C) {
      std::cout << "  {";
      bool First = true;
      for (NodeId N = 0; N < G.numNodes(); ++N)
        if (CR.NodeClass[N] == C) {
          std::cout << (First ? "" : ", ") << G.nodeName(N);
          First = false;
        }
      std::cout << "}\n";
    }
  }
  if (Opt.Dom) {
    DomTree DT = DomTree::buildIterative(G);
    DomTree DC = buildDominatorsViaPst(G, T);
    std::cout << "\n-- dominator tree (idom per node) --\n";
    bool AllMatch = true;
    for (NodeId N = 0; N < G.numNodes(); ++N) {
      std::cout << "  idom(" << G.nodeName(N) << ") = "
                << (DT.idom(N) == InvalidNode ? std::string("<none>")
                                              : G.nodeName(DT.idom(N)))
                << "\n";
      AllMatch &= DT.idom(N) == DC.idom(N);
    }
    std::cout << "  [divide-and-conquer PST builder "
              << (AllMatch ? "matches" : "MISMATCHES") << "]\n";
  }
  if (Opt.Loops) {
    DomTree DT = DomTree::buildIterative(G);
    LoopInfo LI(G, DT);
    std::cout << "\n-- natural loops (" << LI.numLoops() << ") --\n";
    for (LoopId L = 0; L < LI.numLoops(); ++L) {
      const auto &Loop = LI.loop(L);
      std::cout << "  depth " << Loop.Depth << " header "
                << G.nodeName(Loop.Header) << ": {";
      for (size_t I = 0; I < Loop.Nodes.size(); ++I)
        std::cout << (I ? ", " : "") << G.nodeName(Loop.Nodes[I]);
      std::cout << "}\n";
    }
    if (!LI.irreducibleEdges().empty())
      std::cout << "  " << LI.irreducibleEdges().size()
                << " irreducible retreating edge(s)\n";
  }
  if (Opt.Intervals) {
    IntervalPartition P = computeIntervals(G);
    std::cout << "\n-- intervals (" << P.Intervals.size() << ") --\n";
    for (const auto &I : P.Intervals) {
      std::cout << "  I(" << G.nodeName(I.Header) << ") = {";
      for (size_t K = 0; K < I.Nodes.size(); ++K)
        std::cout << (K ? ", " : "") << G.nodeName(I.Nodes[K]);
      std::cout << "}\n";
    }
    std::cout << "  graph is "
              << (isReducibleByIntervals(G) ? "reducible" : "irreducible")
              << "\n";
  }
  if (Opt.Dot) {
    std::cout << "\n-- graphviz --\n";
    printDot(G, std::cout, Name);
  }
}

/// Emits the requested telemetry reports after all analyses ran.
int finishTelemetry(const Options &Opt) {
  if (Opt.Stats) {
    std::cout << "\n-- telemetry --\n"
              << TelemetryRegistry::global().toJson();
  }
  if (!Opt.TraceFile.empty()) {
    TraceWriter Writer;
    if (!Writer.writeFile(Opt.TraceFile)) {
      std::cerr << "error: cannot write trace to '" << Opt.TraceFile
                << "'\n";
      return 1;
    }
    std::cout << "\nwrote " << Writer.snapshot().Spans.size()
              << " trace spans to " << Opt.TraceFile
              << " (open in chrome://tracing or https://ui.perfetto.dev)\n";
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--cfg")
      Opt.CfgInput = true;
    else if (A == "--pst")
      Opt.Pst = true;
    else if (A == "--regions")
      Opt.Regions = true;
    else if (A == "--dom")
      Opt.Dom = true;
    else if (A == "--loops")
      Opt.Loops = true;
    else if (A == "--intervals")
      Opt.Intervals = true;
    else if (A == "--dot")
      Opt.Dot = true;
    else if (A == "--stats")
      Opt.Stats = true;
    else if (A == "--trace-out") {
      if (I + 1 >= Argc) {
        std::cerr << "error: --trace-out needs a file argument\n";
        return 1;
      }
      Opt.TraceFile = Argv[++I];
    }
    else if (A == "--all")
      Opt.Pst = Opt.Regions = Opt.Dom = Opt.Loops = Opt.Intervals = true;
    else if (!A.empty() && A[0] == '-') {
      std::cerr << "error: unknown option '" << A << "'\n";
      return 1;
    } else {
      Opt.InputFile = A;
    }
  }
  if (!Opt.Pst && !Opt.Regions && !Opt.Dom && !Opt.Loops &&
      !Opt.Intervals && !Opt.Dot) {
    Opt.Pst = true;
    // When profiling, cover the whole front half of the pipeline by
    // default so the trace shows cycleequiv -> PST -> control regions.
    if (Opt.Stats || !Opt.TraceFile.empty())
      Opt.Regions = true;
  }

  if (Opt.Stats || !Opt.TraceFile.empty()) {
    Telemetry::setEnabled(true);
    if (!Opt.TraceFile.empty())
      Telemetry::setTraceEnabled(true);
  }

  std::string Input;
  if (Opt.InputFile.empty()) {
    Input = DemoSource;
    std::cout << "(no input file; analyzing the built-in demo)\n";
  } else {
    std::ifstream In(Opt.InputFile);
    if (!In) {
      std::cerr << "error: cannot open '" << Opt.InputFile << "'\n";
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Input = SS.str();
  }

  if (Opt.CfgInput) {
    std::string Error;
    auto G = parseCfgText(Input, &Error);
    if (!G) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
    std::string Why;
    if (!validateCfg(*G, &Why)) {
      std::cerr << "error: invalid CFG: " << Why << "\n";
      return 1;
    }
    analyzeCfg("cfg", *G, Opt);
    return finishTelemetry(Opt);
  }

  std::vector<Diagnostic> Diags;
  auto Fns = compile(Input, &Diags);
  if (!Fns) {
    for (const Diagnostic &D : Diags)
      std::cerr << D.str() << "\n";
    return 1;
  }
  for (const LoweredFunction &F : *Fns)
    analyzeCfg(F.Name, F.Graph, Opt);
  return finishTelemetry(Opt);
}
