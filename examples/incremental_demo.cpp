//===- incremental_demo.cpp - PST maintenance across CFG edits ----------------===//
//
// Build a small CFG, attach an IncrementalPst, and watch the tree evolve
// as edits stream in: a block split inside the loop only rebuilds the loop
// subtree, deleting a conditional arm dissolves the diamond region, and an
// entry-to-exit shortcut forces the full-recompute fallback. The stats
// block at the end shows how little work the incremental path did compared
// to rebuilding from scratch after every commit.
//
//===----------------------------------------------------------------------===//

#include "pst/incremental/IncrementalPst.h"

#include "pst/graph/CfgAlgorithms.h"

#include <iostream>

using namespace pst;

namespace {

void show(const char *What, const IncrementalPst &IP) {
  std::cout << "== " << What << " ==\n"
            << IP.format() << "  (" << IP.numCanonicalRegions()
            << " canonical regions)\n\n";
}

} // namespace

int main() {
  // The quickstart graph: a conditional followed by a while loop.
  //
  //   start -> cond -> {then, else} -> join -> head <-> body, head -> end
  Cfg G;
  NodeId Start = G.addNode("start");
  NodeId Cond = G.addNode("cond");
  NodeId Then = G.addNode("then");
  NodeId Else = G.addNode("else");
  NodeId Join = G.addNode("join");
  NodeId Head = G.addNode("head");
  NodeId Body = G.addNode("body");
  NodeId End = G.addNode("end");
  G.addEdge(Start, Cond);
  EdgeId CondThen = G.addEdge(Cond, Then);
  G.addEdge(Cond, Else);
  G.addEdge(Then, Join);
  G.addEdge(Else, Join);
  G.addEdge(Join, Head);
  EdgeId HeadBody = G.addEdge(Head, Body);
  G.addEdge(Body, Head);
  G.addEdge(Head, End);
  G.setEntry(Start);
  G.setExit(End);

  std::string Why;
  if (!validateCfg(G, &Why)) {
    std::cerr << "invalid CFG: " << Why << "\n";
    return 1;
  }

  // DynamicCfg owns the evolving graph; IncrementalPst keeps the tree
  // valid across commits.
  DynamicCfg DG(std::move(G));
  IncrementalPst IP(DG);
  show("initial tree", IP);

  // Edit 1: split the loop's head->body edge. Both endpoints live inside
  // the loop region, so only that subtree is rebuilt.
  IP.splitBlock(HeadBody, "body.pre");
  IP.commit();
  show("after splitting head->body (loop subtree rebuilt)", IP);

  // Edit 2: duplicate the cond->then arm edge, then delete the original.
  // Both commits rebuild only the conditional's subtree; the then-arm
  // region survives, re-anchored to the replacement edge.
  IP.insertEdge(Cond, Then);
  IP.commit();
  if (!IP.deleteEdge(CondThen))
    std::cerr << "unexpected: arm delete rejected\n";
  IP.commit();
  show("after replacing the cond->then arm edge", IP);

  // Edit 3: a shortcut from the conditional into the loop. The only region
  // containing both endpoints is the root — no boundary confines the edit,
  // so this commit falls back to one full rebuild.
  IP.insertEdge(Cond, Head);
  IP.commit();
  show("after the cond->head shortcut (full-rebuild fallback)", IP);

  // A delete that would disconnect the graph is rejected outright.
  EdgeId OnlyEntry = DG.graph().succEdges(Start)[0];
  std::cout << "deleting start->cond (would orphan everything): "
            << (IP.deleteEdge(OnlyEntry) ? "accepted" : "rejected") << "\n\n";

  const IncrementalPstStats &S = IP.stats();
  std::cout << "stats:\n"
            << "  edits applied     " << S.EditsApplied << "\n"
            << "  edits rejected    " << S.EditsRejected << "\n"
            << "  commits           " << S.Commits << "\n"
            << "  subtree rebuilds  " << S.SubtreesRebuilt << "\n"
            << "  full rebuilds     " << S.FullRebuilds << "\n"
            << "  nodes reprocessed " << S.NodesReprocessed << " (vs "
            << S.FullRecomputeNodes << " from scratch, ratio "
            << S.reprocessRatio() << ")\n";
  return 0;
}
