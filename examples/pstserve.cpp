//===- pstserve.cpp - Long-running sharded analysis server ----------------------===//
//
// Serves a frozen corpus image over the line protocol in
// pst/serve/Protocol.h: region lookups, control-dependence sets,
// dominators and phi placement against pinned epoch snapshots, with
// edits committing through per-shard IncrementalPst writers.
//
// Usage:
//   pstserve --image <file> [options]
//     --image <f>          corpus image to serve (CorpusImage::map; the
//                          zero-parse cold start — exits 1 if any section
//                          checksum mismatches)
//     --shards <n>         writer shards (default 4); function f lives in
//                          shard f % n
//     --threads <t>        query-pool workers (default 0 = hardware)
//     --epoch-capacity <k> epoch table slots per shard (default 64)
//     --batch <b>          max read queries buffered per parallel batch
//                          (default 256; use 1 for strictly interactive
//                          pipes — batching is content-deterministic
//                          either way)
//     --no-derived-cache   disable the per-epoch derived-analysis cache
//                          (DerivedCache.h) and recompute dominators/
//                          cdep/frontiers per query; responses are
//                          byte-identical either way (a CI smoke diffs
//                          both transcripts against one golden)
//     --listen <port>      accept TCP connections on <port> (one session
//                          at a time) instead of serving stdin
//     --stats              enable telemetry; print the stats dump
//                          (TelemetryRegistry::toJson) to stderr at exit
//     --stats-out <f>      enable telemetry; write the stats dump to <f>
//                          at exit (merge fleet dumps with telemetry-merge)
//     --trace-out <f>      enable span retention; write chrome-trace JSON
//                          to <f> at exit
//     --trace-sample <n>   keep every nth span per thread (survives the
//                          per-thread retention cap on long sessions)
//
// Responses are deterministic: a scripted session produces the same
// transcript at any --threads/--shards setting.
//
//===----------------------------------------------------------------------===//

#include "pst/obs/Telemetry.h"
#include "pst/obs/TraceWriter.h"
#include "pst/serve/Protocol.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#define PSTSERVE_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

// ext_stdio_filebuf is GNU-only; portable enough here is a tiny
// streambuf over a connected socket fd.
#include <streambuf>
#else
#define PSTSERVE_HAVE_SOCKETS 0
#endif

using namespace pst;
using namespace pst::serve;

namespace {

struct Options {
  std::string ImagePath;
  uint32_t Shards = 4;
  unsigned Threads = 0;
  uint32_t EpochCapacity = 64;
  size_t Batch = 256;
  int ListenPort = -1;
  bool DerivedCache = true;
  bool Stats = false;
  std::string StatsOut;
  std::string TraceOut;
  uint64_t TraceSample = 0;
};

int usage(const char *Argv0) {
  std::cerr << "usage: " << Argv0
            << " --image <file> [--shards n] [--threads t]"
               " [--epoch-capacity k] [--batch b] [--listen port]"
               " [--no-derived-cache] [--stats] [--stats-out f]"
               " [--trace-out f] [--trace-sample n]\n";
  return 2;
}

#if PSTSERVE_HAVE_SOCKETS

/// Minimal bidirectional streambuf over a connected socket.
class FdStreamBuf : public std::streambuf {
public:
  explicit FdStreamBuf(int Fd) : Fd(Fd) {
    setg(InBuf, InBuf, InBuf);
    setp(OutBuf, OutBuf + sizeof(OutBuf));
  }

protected:
  int underflow() override {
    ssize_t N = ::read(Fd, InBuf, sizeof(InBuf));
    if (N <= 0)
      return traits_type::eof();
    setg(InBuf, InBuf, InBuf + N);
    return traits_type::to_int_type(InBuf[0]);
  }

  int overflow(int C) override {
    if (sync() != 0)
      return traits_type::eof();
    if (C != traits_type::eof()) {
      OutBuf[0] = static_cast<char>(C);
      pbump(1);
    }
    return C;
  }

  int sync() override {
    const char *P = pbase();
    size_t Left = static_cast<size_t>(pptr() - pbase());
    while (Left) {
      ssize_t N = ::write(Fd, P, Left);
      if (N <= 0)
        return -1;
      P += N;
      Left -= static_cast<size_t>(N);
    }
    setp(OutBuf, OutBuf + sizeof(OutBuf));
    return 0;
  }

private:
  int Fd;
  char InBuf[4096];
  char OutBuf[4096];
};

int serveSocket(PstServer &Server, const Options &Opt) {
  int Listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Listener < 0) {
    std::cerr << "error: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  int One = 1;
  ::setsockopt(Listener, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Opt.ListenPort));
  if (::bind(Listener, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(Listener, 1) < 0) {
    std::cerr << "error: bind/listen: " << std::strerror(errno) << "\n";
    ::close(Listener);
    return 1;
  }
  std::cerr << "pstserve: listening on 127.0.0.1:" << Opt.ListenPort << "\n";
  // One client at a time: the protocol's write commands require the
  // single-writer shard contract, and sessions share the server state.
  for (;;) {
    int Client = ::accept(Listener, nullptr, nullptr);
    if (Client < 0)
      break;
    FdStreamBuf Buf(Client);
    std::istream In(&Buf);
    std::ostream Out(&Buf);
    ServerSession Session(Server, Opt.Batch);
    Session.run(In, Out);
    ::close(Client);
  }
  ::close(Listener);
  return 0;
}

#endif // PSTSERVE_HAVE_SOCKETS

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::cerr << "error: " << Flag << " needs an argument\n";
        std::exit(2);
      }
      return Argv[++I];
    };
    if (A == "--image")
      Opt.ImagePath = Next("--image");
    else if (A == "--shards")
      Opt.Shards = static_cast<uint32_t>(std::strtoul(Next("--shards"),
                                                      nullptr, 0));
    else if (A == "--threads")
      Opt.Threads = static_cast<unsigned>(std::strtoul(Next("--threads"),
                                                       nullptr, 0));
    else if (A == "--epoch-capacity")
      Opt.EpochCapacity = static_cast<uint32_t>(
          std::strtoul(Next("--epoch-capacity"), nullptr, 0));
    else if (A == "--batch")
      Opt.Batch = std::strtoull(Next("--batch"), nullptr, 0);
    else if (A == "--listen")
      Opt.ListenPort = static_cast<int>(std::strtol(Next("--listen"),
                                                    nullptr, 0));
    else if (A == "--no-derived-cache")
      Opt.DerivedCache = false;
    else if (A == "--stats")
      Opt.Stats = true;
    else if (A == "--stats-out")
      Opt.StatsOut = Next("--stats-out");
    else if (A == "--trace-out")
      Opt.TraceOut = Next("--trace-out");
    else if (A == "--trace-sample")
      Opt.TraceSample = std::strtoull(Next("--trace-sample"), nullptr, 0);
    else
      return usage(Argv[0]);
  }
  if (Opt.ImagePath.empty())
    return usage(Argv[0]);

  if (Opt.Stats || !Opt.StatsOut.empty() || !Opt.TraceOut.empty())
    Telemetry::setEnabled(true);
  if (!Opt.TraceOut.empty())
    Telemetry::setTraceEnabled(true);
  if (Opt.TraceSample)
    Telemetry::setSpanSampleEvery(Opt.TraceSample);

  ServeOptions SOpts;
  SOpts.NumShards = Opt.Shards ? Opt.Shards : 1;
  SOpts.NumThreads = Opt.Threads;
  SOpts.EpochCapacity = Opt.EpochCapacity;
  SOpts.DerivedCache = Opt.DerivedCache;

  std::string Error;
  std::unique_ptr<PstServer> Server =
      PstServer::open(Opt.ImagePath, SOpts, &Error);
  if (!Server) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  std::cerr << "pstserve: serving " << Server->numFunctions()
            << " functions in " << Server->numShards() << " shards, "
            << Server->numWorkers() << " query workers\n";

  int Rc = 0;
  if (Opt.ListenPort >= 0) {
#if PSTSERVE_HAVE_SOCKETS
    Rc = serveSocket(*Server, Opt);
#else
    std::cerr << "error: --listen is not supported on this platform\n";
    return 2;
#endif
  } else {
    ServerSession Session(*Server, Opt.Batch);
    Session.run(std::cin, std::cout);
  }

  // Post-session reporting (quiescent: the session loop has joined every
  // pool job before returning).
  if (!Opt.TraceOut.empty()) {
    TraceWriter Writer;
    if (Writer.writeFile(Opt.TraceOut))
      std::cerr << "pstserve: wrote trace to " << Opt.TraceOut << "\n";
    else
      std::cerr << "pstserve: cannot write " << Opt.TraceOut << "\n";
  }
  if (!Opt.StatsOut.empty()) {
    std::ofstream OS(Opt.StatsOut, std::ios::binary);
    OS << TelemetryRegistry::global().toJson();
    std::cerr << "pstserve: wrote stats to " << Opt.StatsOut << "\n";
  }
  if (Opt.Stats)
    std::cerr << TelemetryRegistry::global().toJson();
  return Rc;
}
