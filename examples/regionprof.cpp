//===- regionprof.cpp - Region profiler & parallelism planner driver ------------===//
//
// Profiles MiniLang functions over a workload of interpreter runs,
// attributes the dynamic cost to the PST's canonical SESE regions, and
// prints a Kremlin-style parallelization plan.
//
// Usage:
//   regionprof [options] [input-file]
//     --function NAME  profile only the function called NAME
//     --runs N         size of the synthetic workload (default 8)
//     --input a,b,c    add one run with these integer arguments (repeatable;
//                      replaces the synthetic workload)
//     --max-steps N    per-run step budget (default 1M)
//     --json FILE      also write the combined JSON report to FILE
//                      ('-' for stdout)
//     --plan-only      print only the ranked plan, not the region tree
//     --stats          enable telemetry; dump the counter/timer JSON at exit
//
// Without an input file, examples/hotloop.mini's `hotloop` is built in.
// The synthetic workload is deterministic: run r passes arguments
// a_k = (7 * r + 3 * k + 5) % 23, so reports are byte-stable across
// invocations.
//
//===----------------------------------------------------------------------===//

#include "pst/core/ProgramStructureTree.h"
#include "pst/lang/Interp.h"
#include "pst/lang/Lower.h"
#include "pst/obs/Telemetry.h"
#include "pst/prof/ParallelismPlanner.h"
#include "pst/prof/ProfileReport.h"
#include "pst/prof/RegionProfile.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace pst;

namespace {

struct Options {
  std::string InputFile;
  std::string Function;
  std::string JsonFile;
  std::vector<std::vector<int64_t>> Workload;
  uint64_t Runs = 8;
  uint64_t MaxSteps = 1 << 20;
  bool PlanOnly = false;
  bool Stats = false;
};

const char *DemoSource = R"(
func hotloop(n, m) {
  var i = 0;
  var j = 0;
  var acc = 0;
  if (n < 0) { n = 0; }
  if (m < 0) { m = 0; }
  while (i < n) {
    j = 0;
    while (j < m) {
      acc = acc + (i * m + j) % 7;
      j = j + 1;
    }
    i = i + 1;
  }
  if (acc % 2 == 1) { acc = acc + 1; }
  return acc;
}
)";

/// Number of parameters of a lowered function: its entry block defines one
/// Param instruction per parameter.
uint32_t numParams(const LoweredFunction &F) {
  uint32_t N = 0;
  for (const Instruction &I : F.Code[F.Graph.entry()])
    N += I.K == Instruction::Kind::Param;
  return N;
}

/// The documented deterministic synthetic workload.
std::vector<int64_t> syntheticArgs(uint64_t Run, uint32_t NumParams) {
  std::vector<int64_t> Args(NumParams);
  for (uint32_t K = 0; K < NumParams; ++K)
    Args[K] = static_cast<int64_t>((7 * Run + 3 * K + 5) % 23);
  return Args;
}

bool parseArgList(const std::string &Spec, std::vector<int64_t> &Out) {
  std::stringstream SS(Spec);
  std::string Tok;
  while (std::getline(SS, Tok, ',')) {
    try {
      Out.push_back(std::stoll(Tok));
    } catch (...) {
      return false;
    }
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto NeedsValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::cerr << "error: " << Flag << " needs an argument\n";
        return nullptr;
      }
      return Argv[++I];
    };
    if (A == "--function") {
      const char *V = NeedsValue("--function");
      if (!V)
        return 1;
      Opt.Function = V;
    } else if (A == "--runs") {
      const char *V = NeedsValue("--runs");
      if (!V)
        return 1;
      Opt.Runs = std::stoull(V);
    } else if (A == "--input") {
      const char *V = NeedsValue("--input");
      if (!V)
        return 1;
      std::vector<int64_t> Args;
      if (!parseArgList(V, Args)) {
        std::cerr << "error: bad --input list '" << V << "'\n";
        return 1;
      }
      Opt.Workload.push_back(std::move(Args));
    } else if (A == "--max-steps") {
      const char *V = NeedsValue("--max-steps");
      if (!V)
        return 1;
      Opt.MaxSteps = std::stoull(V);
    } else if (A == "--json") {
      const char *V = NeedsValue("--json");
      if (!V)
        return 1;
      Opt.JsonFile = V;
    } else if (A == "--plan-only") {
      Opt.PlanOnly = true;
    } else if (A == "--stats") {
      Opt.Stats = true;
    } else if (!A.empty() && A[0] == '-') {
      std::cerr << "error: unknown option '" << A << "'\n";
      return 1;
    } else {
      Opt.InputFile = A;
    }
  }

  if (Opt.Stats)
    Telemetry::setEnabled(true);

  // With --json -, stdout carries only the JSON document so it can be piped
  // straight into a consumer; the human-readable report moves to stderr.
  const bool JsonToStdout = Opt.JsonFile == "-";
  std::ostream &Txt = JsonToStdout ? std::cerr : std::cout;

  std::string Input;
  if (Opt.InputFile.empty()) {
    Input = DemoSource;
    Txt << "(no input file; profiling the built-in hot-loop demo)\n";
  } else {
    std::ifstream In(Opt.InputFile);
    if (!In) {
      std::cerr << "error: cannot open '" << Opt.InputFile << "'\n";
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Input = SS.str();
  }

  std::vector<Diagnostic> Diags;
  auto Fns = compile(Input, &Diags);
  if (!Fns) {
    for (const Diagnostic &D : Diags)
      std::cerr << D.str() << "\n";
    return 1;
  }

  std::string Json = "[";
  bool FirstJson = true;
  bool AnyProfiled = false;
  for (const LoweredFunction &F : *Fns) {
    if (!Opt.Function.empty() && F.Name != Opt.Function)
      continue;
    AnyProfiled = true;

    ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
    RegionProfile P(F, T);

    std::vector<std::vector<int64_t>> Workload = Opt.Workload;
    if (Workload.empty())
      for (uint64_t R = 0; R < Opt.Runs; ++R)
        Workload.push_back(syntheticArgs(R, numParams(F)));

    uint64_t Unfinished = 0;
    for (const std::vector<int64_t> &Args : Workload)
      if (!P.runAndAdd(Args, Opt.MaxSteps).Finished)
        ++Unfinished;
    P.finalize();
    ParallelismPlan Plan = planParallelism(P);

    Txt << "\n======== " << F.Name << " (" << F.Graph.numNodes() << " nodes, "
        << T.numCanonicalRegions() << " regions) ========\n";
    if (Unfinished)
      Txt << "warning: " << Unfinished << " of " << Workload.size()
          << " runs hit the step budget and were not profiled\n";
    if (!P.numRuns()) {
      Txt << "no finished runs; nothing to report\n";
      continue;
    }
    if (!Opt.PlanOnly)
      Txt << "\n" << formatRegionProfile(P);
    Txt << "\n" << formatParallelismPlan(P, Plan);

    if (!Opt.JsonFile.empty()) {
      if (!FirstJson)
        Json += ",";
      FirstJson = false;
      Json += profileToJson(P, Plan);
    }
  }
  Json += "]";

  if (!AnyProfiled) {
    std::cerr << "error: no function matched"
              << (Opt.Function.empty() ? "" : " --function " + Opt.Function)
              << "\n";
    return 1;
  }

  if (!Opt.JsonFile.empty()) {
    if (JsonToStdout) {
      std::cout << Json << "\n";
    } else {
      std::ofstream Out(Opt.JsonFile);
      if (!Out) {
        std::cerr << "error: cannot write '" << Opt.JsonFile << "'\n";
        return 1;
      }
      Out << Json << "\n";
      std::cout << "\nwrote JSON report to " << Opt.JsonFile << "\n";
    }
  }

  if (Opt.Stats)
    Txt << "\n-- telemetry --\n" << TelemetryRegistry::global().toJson();
  return 0;
}
