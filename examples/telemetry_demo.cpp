//===- telemetry_demo.cpp - pst/obs walkthrough --------------------------------===//
//
// Shows the observability subsystem end to end:
//
//   1. enable the runtime gates (stats + span retention),
//   2. run an instrumented workload — a few direct PST builds, then a
//      multi-threaded BatchAnalyzer corpus so spans land on several
//      worker tracks,
//   3. dump the flat counter/timer report (TelemetryRegistry::toJson),
//   4. export a chrome://tracing file (telemetry_demo_trace.json) you can
//      open in ui.perfetto.dev to see the nested stage spans per thread.
//
// Build with -DPST_TELEMETRY=OFF and the same binary still runs: the
// probes compile to no-ops and the report says telemetry_compiled=false.
//
//===----------------------------------------------------------------------===//

#include "pst/obs/Telemetry.h"
#include "pst/obs/TraceWriter.h"
#include "pst/runtime/BatchAnalyzer.h"
#include "pst/workload/CfgGenerators.h"

#include <iostream>

using namespace pst;

int main() {
  // Stats gate on; span retention on too so the trace export has events.
  Telemetry::setEnabled(true);
  Telemetry::setTraceEnabled(true);

  // A handful of direct builds on the structured families: these run on
  // the main thread, so their spans nest on thread track 0.
  for (uint32_t Rungs : {4u, 16u, 64u}) {
    Cfg G = diamondLadderCfg(Rungs);
    ProgramStructureTree T = ProgramStructureTree::build(G);
    std::cout << "diamond ladder rungs=" << Rungs << " -> " << T.numRegions()
              << " regions\n";
  }

  // A parallel corpus: BatchAnalyzer's workers each get their own
  // thread-local sink, so batch.chunk spans appear on multiple tracks
  // with pst.build / cycleequiv.run nested inside each.
  std::vector<Cfg> Corpus;
  Rng R(42);
  for (int I = 0; I < 200; ++I) {
    RandomCfgOptions Opts;
    Opts.NumNodes = 16 + static_cast<uint32_t>(R.nextBelow(48));
    Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(Opts.NumNodes));
    Corpus.push_back(randomBackboneCfg(R, Opts));
  }
  BatchOptions Opts;
  Opts.NumThreads = 4;
  BatchAnalyzer Engine(Opts);
  std::vector<FunctionAnalysis> Results = Engine.analyzeCorpus(Corpus);
  std::cout << "batch analyzed " << Results.size() << " functions\n";

  // Exporter 1: flat key/value stats.
  std::cout << "\n-- telemetry --\n" << TelemetryRegistry::global().toJson();

  // Exporter 2: chrome trace events.
  TraceWriter Writer;
  const char *Path = "telemetry_demo_trace.json";
  if (Writer.writeFile(Path))
    std::cout << "\nwrote " << Writer.snapshot().Spans.size() << " spans to "
              << Path << " (load in chrome://tracing or ui.perfetto.dev)\n";
  else
    std::cerr << "\nfailed to write " << Path << "\n";
  return 0;
}
