//===- telemetry_merge.cpp - Merge sharded telemetry dumps ----------------------===//
//
// Combines TelemetryRegistry::toJson() dumps from several processes (a
// sharded pstserve fleet, parallel bench runs) into one report in the
// same format: counters add, histograms merge bucket-wise, means are
// recomputed from merged count/sum. See pst/obs/TelemetryMerge.h.
//
// Usage:
//   telemetry-merge [--out <file>] <dump.json> [<dump.json> ...]
//
// Writes the merged dump to stdout (or --out) and exits 1 on any
// unreadable or malformed input.
//
//===----------------------------------------------------------------------===//

#include "pst/obs/TelemetryMerge.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

using namespace pst;

int main(int Argc, char **Argv) {
  std::string OutPath;
  std::vector<std::string> Inputs;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--out") {
      if (I + 1 >= Argc) {
        std::cerr << "error: --out needs an argument\n";
        return 2;
      }
      OutPath = Argv[++I];
    } else if (!A.empty() && A[0] == '-') {
      std::cerr << "usage: telemetry-merge [--out <file>] <dump.json>...\n";
      return 2;
    } else {
      Inputs.push_back(A);
    }
  }
  if (Inputs.empty()) {
    std::cerr << "usage: telemetry-merge [--out <file>] <dump.json>...\n";
    return 2;
  }

  std::vector<TelemetryStats> Parts;
  Parts.reserve(Inputs.size());
  for (const std::string &Path : Inputs) {
    std::ifstream In(Path, std::ios::binary);
    if (!In) {
      std::cerr << "error: cannot read " << Path << "\n";
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    TelemetryStats S;
    std::string Error;
    if (!parseTelemetryJson(Buf.str(), S, &Error)) {
      std::cerr << "error: " << Path << ": " << Error << "\n";
      return 1;
    }
    Parts.push_back(std::move(S));
  }

  std::string Merged = telemetryStatsToJson(mergeTelemetryStats(Parts));
  if (OutPath.empty()) {
    std::cout << Merged;
  } else {
    std::ofstream Out(OutPath, std::ios::binary);
    if (!Out) {
      std::cerr << "error: cannot write " << OutPath << "\n";
      return 1;
    }
    Out << Merged;
  }
  return 0;
}
