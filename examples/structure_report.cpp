//===- structure_report.cpp - Analyze a MiniLang program ------------------------===//
//
// Compiles MiniLang source (a file named on the command line, or a built-in
// demo program) and prints, per function: the lowered block-level CFG, the
// program structure tree with region kinds, the structure metrics of the
// paper's Section 4, and the control regions of Section 5.
//
// Usage: structure_report [source.mini]
//
//===----------------------------------------------------------------------===//

#include "pst/cdg/ControlRegions.h"
#include "pst/core/ProgramStructureTree.h"
#include "pst/core/RegionAnalysis.h"
#include "pst/core/StructureMetrics.h"
#include "pst/lang/Lower.h"
#include "pst/support/TableWriter.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace pst;

static const char *DemoProgram = R"(
# A demo procedure: a guarded setup conditional, a scan loop with an
# early exit, and a summary switch.
func demo(n, bias) {
  var sum = 0;
  var i = 0;
  var kind = 0;
  if (bias > 0) { sum = bias; } else { sum = -bias; }
  while (i < n) {
    if (sum > 1000) { break; }
    sum = sum + i * i;
    i = i + 1;
  }
  switch (sum % 3) {
    case 0: kind = 10;
    case 1: kind = 20;
    default: kind = 30;
  }
  return sum + kind;
}
)";

int main(int Argc, char **Argv) {
  std::string Source;
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::cerr << "error: cannot open '" << Argv[1] << "'\n";
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  } else {
    Source = DemoProgram;
    std::cout << "(no input file given; analyzing the built-in demo)\n";
  }

  std::vector<Diagnostic> Diags;
  auto Fns = compile(Source, &Diags);
  if (!Fns) {
    for (const Diagnostic &D : Diags)
      std::cerr << D.str() << "\n";
    return 1;
  }

  for (const LoweredFunction &F : *Fns) {
    std::cout << "\n================ " << F.Name << " ================\n\n";
    std::cout << formatLowered(F) << "\n";

    ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
    std::cout << "Program structure tree:\n" << formatPst(F.Graph, T);

    PstStats S = computePstStats(F.Graph, T);
    std::cout << "\nStructure metrics: " << S.NumRegions << " regions, max "
              << "depth " << S.MaxDepth << ", average depth "
              << TableWriter::fmt(S.AvgDepth, 2) << ", max region size "
              << S.MaxRegionSize << ", "
              << (S.FullyStructured ? "fully structured"
                                    : "contains unstructured regions")
              << "\n";

    ControlRegionsResult CR = computeControlRegionsLinear(F.Graph);
    std::cout << "\nControl regions (nodes that execute under identical "
                 "control conditions):\n";
    for (uint32_t C = 0; C < CR.NumClasses; ++C) {
      std::cout << "  {";
      bool First = true;
      for (NodeId N = 0; N < F.Graph.numNodes(); ++N) {
        if (CR.NodeClass[N] != C)
          continue;
        std::cout << (First ? "" : ", ") << F.Graph.nodeName(N);
        First = false;
      }
      std::cout << "}\n";
    }
  }
  return 0;
}
