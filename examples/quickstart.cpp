//===- quickstart.cpp - Smallest end-to-end PST example -------------------------===//
//
// Build a control flow graph by hand, compute its program structure tree,
// and inspect regions. This is the five-minute tour of the public API.
//
//===----------------------------------------------------------------------===//

#include "pst/core/ProgramStructureTree.h"
#include "pst/core/RegionAnalysis.h"
#include "pst/graph/CfgAlgorithms.h"
#include "pst/graph/CfgIO.h"

#include <iostream>

using namespace pst;

int main() {
  // A conditional followed by a loop:
  //
  //   start -> cond -> {then, else} -> join -> head <-> body, head -> end
  Cfg G;
  NodeId Start = G.addNode("start");
  NodeId Cond = G.addNode("cond");
  NodeId Then = G.addNode("then");
  NodeId Else = G.addNode("else");
  NodeId Join = G.addNode("join");
  NodeId Head = G.addNode("head");
  NodeId Body = G.addNode("body");
  NodeId End = G.addNode("end");
  G.addEdge(Start, Cond);
  G.addEdge(Cond, Then);
  G.addEdge(Cond, Else);
  G.addEdge(Then, Join);
  G.addEdge(Else, Join);
  G.addEdge(Join, Head);
  G.addEdge(Head, Body);
  G.addEdge(Body, Head);
  G.addEdge(Head, End);
  G.setEntry(Start);
  G.setExit(End);

  // Every analysis requires a valid two-terminal CFG (Definition 1).
  std::string Why;
  if (!validateCfg(G, &Why)) {
    std::cerr << "invalid CFG: " << Why << "\n";
    return 1;
  }

  // The PST: canonical single-entry single-exit regions, nested.
  ProgramStructureTree T = ProgramStructureTree::build(G);
  std::cout << "The CFG has " << T.numCanonicalRegions()
            << " canonical SESE regions:\n\n";
  std::cout << formatPst(G, T) << "\n";

  // Per-node queries: which innermost region holds each node?
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    RegionId R = T.regionOfNode(N);
    std::cout << G.nodeName(N) << " lives in "
              << (R == T.root() ? std::string("the procedure root")
                                : "region " + std::to_string(R))
              << "\n";
  }

  // Region kinds drive algorithm specialization (Section 6 of the paper).
  std::cout << "\nRegion kinds:\n";
  for (RegionId R = 1; R < T.numRegions(); ++R)
    std::cout << "  region " << R << ": "
              << regionKindName(classifyRegion(G, T, R)) << "\n";

  // Dump Graphviz for visual inspection.
  std::cout << "\nGraphviz of the CFG:\n";
  printDot(G, std::cout, "quickstart");
  return 0;
}
