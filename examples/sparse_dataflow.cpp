//===- sparse_dataflow.cpp - QPG-based sparse dataflow ---------------------------===//
//
// Demonstrates Section 6.2: solving the availability of one expression via
// the quick propagation graph, which bypasses every SESE region whose
// transfer functions are all identity. Prints the CFG-vs-QPG sizes and
// cross-checks the sparse solution against the dense iterative one.
//
//===----------------------------------------------------------------------===//

#include "pst/core/ProgramStructureTree.h"
#include "pst/dataflow/Problems.h"
#include "pst/dataflow/Qpg.h"
#include "pst/lang/Lower.h"
#include "pst/support/TableWriter.h"

#include <iostream>

using namespace pst;

static const char *SourceText = R"(
func kernel(a, b, n) {
  var key = a + b;       # computes the tracked expression
  var i = 0;
  var acc = 0;
  while (i < n) {        # a large transparent region for 'a + b'
    var t = i * i;
    if (t % 3 == 0) { acc = acc + t; } else { acc = acc - 1; }
    i = i + 1;
  }
  var again = a + b;     # available here? (yes: no redefinition of a, b)
  b = 0;                 # kill
  var gone = a + b;      # recomputed after the kill
  return key + again + acc + gone;
}
)";

int main() {
  std::vector<Diagnostic> Diags;
  auto Fns = compile(SourceText, &Diags);
  if (!Fns) {
    for (const Diagnostic &D : Diags)
      std::cerr << D.str() << "\n";
    return 1;
  }
  const LoweredFunction &F = (*Fns)[0];
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);

  std::cout << "Expressions in '" << F.Name << "':\n";
  for (const std::string &K : expressionKeys(F))
    std::cout << "  " << K << "\n";

  const std::string Key = "(a + b)";
  BitVectorProblem P = makeSingleExprAvailability(F, Key);

  Qpg Q;
  EdgeSolution Sparse = solveOnQpg(F.Graph, T, P, &Q);
  std::cout << "\nTracking availability of \"" << Key << "\":\n";
  std::cout << "  CFG: " << F.Graph.numNodes() << " nodes, "
            << F.Graph.numEdges() << " edges\n";
  std::cout << "  QPG: " << Q.numNodes() << " nodes, " << Q.numEdges()
            << " edges ("
            << TableWriter::fmt(100.0 * Q.numNodes() / F.Graph.numNodes(), 0)
            << "% of the CFG)\n";

  std::cout << "\nQPG edges (each bypasses a maximal transparent region "
               "chain):\n";
  for (const Qpg::Edge &E : Q.Edges) {
    std::cout << "  " << F.Graph.nodeName(Q.Nodes[E.Src]) << " -> "
              << F.Graph.nodeName(Q.Nodes[E.Dst]);
    if (E.First != E.Last)
      std::cout << "   (bypasses from edge e" << E.First << " to e"
                << E.Last << ")";
    std::cout << "\n";
  }

  // Cross-check against the dense solution.
  EdgeSolution Dense = edgeView(F.Graph, solveIterative(F.Graph, P));
  uint32_t Mismatches = 0;
  for (EdgeId E = 0; E < F.Graph.numEdges(); ++E)
    Mismatches += !(Sparse.EdgeValue[E] == Dense.EdgeValue[E]);
  std::cout << "\nSparse vs dense solution: "
            << (Mismatches == 0 ? "identical on every CFG edge"
                                : "MISMATCH")
            << "\n";

  std::cout << "\nEdges where \"" << Key << "\" is available:\n";
  for (EdgeId E = 0; E < F.Graph.numEdges(); ++E)
    if (Sparse.EdgeValue[E].test(0))
      std::cout << "  " << F.Graph.nodeName(F.Graph.source(E)) << " -> "
                << F.Graph.nodeName(F.Graph.target(E)) << "\n";
  return 0;
}
