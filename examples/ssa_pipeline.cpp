//===- ssa_pipeline.cpp - SSA construction, two ways ------------------------------===//
//
// Compiles a MiniLang function and builds SSA form twice: with classic
// iterated dominance frontiers and with the paper's PST-based
// divide-and-conquer phi placement (Section 6.1). Shows that both agree
// and how much of the PST the sparse placement actually touched.
//
//===----------------------------------------------------------------------===//

#include "pst/core/ProgramStructureTree.h"
#include "pst/lang/Lower.h"
#include "pst/ssa/SsaBuilder.h"
#include "pst/support/TableWriter.h"

#include <iostream>

using namespace pst;

static const char *SourceText = R"(
func accumulate(n) {
  var i = 0;
  var even = 0;
  var odd = 0;
  while (i < n) {
    if (i % 2 == 0) {
      even = even + i;
    } else {
      odd = odd + i;
    }
    i = i + 1;
  }
  var total = even + odd;
  return total;
}
)";

int main() {
  std::vector<Diagnostic> Diags;
  auto Fns = compile(SourceText, &Diags);
  if (!Fns) {
    for (const Diagnostic &D : Diags)
      std::cerr << D.str() << "\n";
    return 1;
  }
  const LoweredFunction &F = (*Fns)[0];
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);

  PhiPlacement Classic = placePhisClassic(F);
  PhiPlacement Sparse = placePhisPst(F, T);

  std::cout << "Phi placement per variable (Theorem 9: both strategies "
               "agree):\n\n";
  TableWriter W;
  W.setHeader({"variable", "phi blocks", "regions examined (PST)",
               "of total"});
  for (VarId V = 0; V < F.numVars(); ++V) {
    std::string Blocks;
    for (NodeId B : Sparse.PhiBlocks[V])
      Blocks += (Blocks.empty() ? "" : " ") + F.Graph.nodeName(B);
    if (Classic.PhiBlocks[V] != Sparse.PhiBlocks[V])
      Blocks += "  (MISMATCH!)";
    W.addRow({F.VarNames[V], Blocks.empty() ? "-" : Blocks,
              std::to_string(Sparse.RegionsExamined[V]),
              std::to_string(Sparse.RegionsTotal)});
  }
  W.print(std::cout);

  SsaForm S = buildSsa(F, Sparse);
  std::string Why;
  if (!verifySsa(F, S, &Why)) {
    std::cerr << "SSA verification failed: " << Why << "\n";
    return 1;
  }
  std::cout << "\nSSA form (" << S.numPhis() << " phi functions, verified):\n\n"
            << formatSsa(F, S);
  return 0;
}
